//===- bytecode/Disassembler.cpp ------------------------------------------===//

#include "bytecode/Bytecode.h"

#include "support/Assert.h"

#include <cstdio>

using namespace ccjs;

static const char *opcodeName(Opcode Op) {
  switch (Op) {
  case Opcode::LdaConst:
    return "LdaConst";
  case Opcode::LdaSmi:
    return "LdaSmi";
  case Opcode::LdaUndefined:
    return "LdaUndefined";
  case Opcode::LdaNull:
    return "LdaNull";
  case Opcode::LdaTrue:
    return "LdaTrue";
  case Opcode::LdaFalse:
    return "LdaFalse";
  case Opcode::LdaThis:
    return "LdaThis";
  case Opcode::LdLocal:
    return "LdLocal";
  case Opcode::StLocal:
    return "StLocal";
  case Opcode::LdGlobal:
    return "LdGlobal";
  case Opcode::StGlobal:
    return "StGlobal";
  case Opcode::Pop:
    return "Pop";
  case Opcode::Dup:
    return "Dup";
  case Opcode::BinOp:
    return "BinOp";
  case Opcode::UnaOp:
    return "UnaOp";
  case Opcode::Jump:
    return "Jump";
  case Opcode::JumpLoop:
    return "JumpLoop";
  case Opcode::JumpIfFalse:
    return "JumpIfFalse";
  case Opcode::JumpIfTrue:
    return "JumpIfTrue";
  case Opcode::GetProp:
    return "GetProp";
  case Opcode::SetProp:
    return "SetProp";
  case Opcode::GetElem:
    return "GetElem";
  case Opcode::SetElem:
    return "SetElem";
  case Opcode::GetLength:
    return "GetLength";
  case Opcode::CreateObject:
    return "CreateObject";
  case Opcode::CreateArray:
    return "CreateArray";
  case Opcode::AddPropLit:
    return "AddPropLit";
  case Opcode::StElemInit:
    return "StElemInit";
  case Opcode::CallGlobal:
    return "CallGlobal";
  case Opcode::CallMethod:
    return "CallMethod";
  case Opcode::CallValue:
    return "CallValue";
  case Opcode::New:
    return "New";
  case Opcode::Return:
    return "Return";
  }
  CCJS_UNREACHABLE("unknown opcode");
}

static bool opcodeUsesName(Opcode Op) {
  return Op == Opcode::GetProp || Op == Opcode::SetProp ||
         Op == Opcode::AddPropLit || Op == Opcode::CallMethod;
}

std::string ccjs::disassemble(const BytecodeFunction &F,
                              const StringInterner &Names) {
  std::string Out = "function " + F.Name + " (params=" +
                    std::to_string(F.NumParams) +
                    ", locals=" + std::to_string(F.NumLocals) + ")\n";
  char Buf[128];
  for (size_t I = 0; I < F.Code.size(); ++I) {
    const Instr &In = F.Code[I];
    std::snprintf(Buf, sizeof(Buf), "  %4zu  %-13s A=%-6d", I,
                  opcodeName(In.Op), In.A);
    Out += Buf;
    if (opcodeUsesName(In.Op)) {
      Out += " name=";
      Out += std::string(Names.text(In.B));
    } else if (In.B != 0) {
      Out += " B=" + std::to_string(In.B);
    }
    if (In.Op == Opcode::LdaConst) {
      const ConstEntry &C = F.Consts[In.A];
      Out += C.Kind == ConstEntry::Number
                 ? " (" + std::to_string(C.Num) + ")"
                 : " (\"" + C.Str + "\")";
    }
    Out += "\n";
  }
  return Out;
}
