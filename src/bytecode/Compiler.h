//===- bytecode/Compiler.h - AST to bytecode --------------------*- C++ -*-===//
///
/// \file
/// Compiles a parsed MiniJS program into a BytecodeModule. Function
/// declarations become function-table entries; remaining top-level
/// statements form the entry function. `var` declarations are hoisted to
/// function scope; unknown identifiers resolve to globals.
///
//===----------------------------------------------------------------------===//

#ifndef CCJS_BYTECODE_COMPILER_H
#define CCJS_BYTECODE_COMPILER_H

#include "bytecode/Bytecode.h"
#include "frontend/Ast.h"
#include "support/StringInterner.h"

#include <string>

namespace ccjs {

struct CompileResult {
  BytecodeModule Module;
  bool Ok = true;
  std::string Error;
};

/// Compiles \p Prog, interning property names through \p Names.
CompileResult compileProgram(const Program &Prog, StringInterner &Names);

} // namespace ccjs

#endif // CCJS_BYTECODE_COMPILER_H
