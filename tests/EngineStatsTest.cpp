//===- tests/EngineStatsTest.cpp - Measurement plumbing -------------------===//

#include "TestUtil.h"

#include "core/Runner.h"

using namespace ccjs;

namespace {

const char *CountedProgram = R"js(
function P(x) { this.x = x; }
var objs = [];
var i; for (i = 0; i < 64; i++) objs[i] = new P(i);
function run() {
  var s = 0; var i;
  for (i = 0; i < 64; i++) s += objs[i].x;
  return s;
}
)js";

TEST(EngineStatsTest, InstructionCategoriesSumToTotal) {
  Engine E(test::hotConfig(false));
  ASSERT_TRUE(E.load(CountedProgram));
  ASSERT_TRUE(E.runTopLevel());
  for (int I = 0; I < 10; ++I)
    E.callGlobal("run");
  RunStats S = E.stats();
  uint64_t Sum = 0;
  for (unsigned C = 0; C < NumInstrCategories; ++C)
    Sum += S.Instrs.PerCategory[C];
  EXPECT_EQ(Sum, S.Instrs.total());
  EXPECT_GT(S.Instrs.total(), 0u);
  EXPECT_GT(S.Instrs.optimizedTotal(), 0u);
}

TEST(EngineStatsTest, ResetStatsKeepsWarmState) {
  Engine E(test::hotConfig(false));
  ASSERT_TRUE(E.load(CountedProgram));
  ASSERT_TRUE(E.runTopLevel());
  for (int I = 0; I < 9; ++I)
    E.callGlobal("run");
  E.resetStats();
  EXPECT_EQ(E.stats().Instrs.total(), 0u);
  E.callGlobal("run");
  RunStats S = E.stats();
  EXPECT_GT(S.Instrs.total(), 0u);
  // After warm-up the measured iteration runs almost entirely optimized.
  EXPECT_GT(double(S.Instrs.optimizedTotal()), 0.5 * double(S.Instrs.total()))
      << "steady state must be dominated by optimized code";
}

TEST(EngineStatsTest, CyclesAndEnergyArePositiveAndConsistent) {
  Engine E(test::hotConfig(false));
  ASSERT_TRUE(E.load(CountedProgram));
  ASSERT_TRUE(E.runTopLevel());
  E.callGlobal("run");
  RunStats S = E.stats();
  EXPECT_GT(S.CyclesTotal, 0.0);
  EXPECT_DOUBLE_EQ(S.CyclesTotal, S.CyclesOptimized + S.CyclesRest);
  EXPECT_GT(S.EnergyTotal.total(), 0.0);
  EXPECT_GE(S.EnergyTotal.total(), S.EnergyOptimized.total());
  EXPECT_GT(S.EnergyTotal.LeakagePJ, 0.0);
}

TEST(EngineStatsTest, MonomorphismSummary) {
  Engine E(test::hotConfig(false));
  ASSERT_TRUE(E.load(CountedProgram));
  ASSERT_TRUE(E.runTopLevel());
  for (int I = 0; I < 10; ++I)
    E.callGlobal("run");
  RunStats S = E.stats();
  // objs[i].x loads: monomorphic property loads; objs[i]: monomorphic
  // elements loads.
  EXPECT_GT(S.Loads.MonomorphicProperty, 0u);
  EXPECT_GT(S.Loads.MonomorphicElements, 0u);
  EXPECT_EQ(S.Loads.NonMonomorphicProperty, 0u);
  EXPECT_GT(S.Loads.FirstLineLoads, 0u);
}

TEST(EngineStatsTest, ClassCacheCountersOnlyWhenEnabled) {
  {
    Engine E(test::hotConfig(false));
    ASSERT_TRUE(E.load(CountedProgram));
    ASSERT_TRUE(E.runTopLevel());
    E.callGlobal("run");
    EXPECT_EQ(E.stats().CcAccesses, 0u);
  }
  {
    Engine E(test::hotConfig(true));
    ASSERT_TRUE(E.load(CountedProgram));
    ASSERT_TRUE(E.runTopLevel());
    E.callGlobal("run");
    EXPECT_GT(E.stats().CcAccesses, 0u);
    EXPECT_GT(E.stats().CcHitRate, 0.9);
  }
}

TEST(EngineStatsTest, HiddenClassCountIsSmall) {
  Engine E(test::hotConfig(false));
  ASSERT_TRUE(E.load(CountedProgram));
  ASSERT_TRUE(E.runTopLevel());
  RunStats S = E.stats();
  // Paper section 5.3.1: benchmarks use few hidden classes.
  EXPECT_LT(S.NumHiddenClasses, 32u);
  EXPECT_GE(S.NumHiddenClasses, 3u);
}

TEST(EngineStatsTest, RunnerSteadyStateProtocol) {
  std::string Src = std::string(CountedProgram) + "\nprint('ready');";
  BenchRun R = runSteadyState(EngineConfig(), Src, 10);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_GT(R.Steady.Instrs.total(), 0u);
}

TEST(EngineStatsTest, RunnerComparisonProducesSpeedup) {
  std::string Src = std::string(CountedProgram) +
                    "\nfunction noop() {} print('ok');";
  Comparison C = compareConfigs(Src, EngineConfig(), 10);
  ASSERT_TRUE(C.Baseline.Ok) << C.Baseline.Error;
  ASSERT_TRUE(C.ClassCache.Ok) << C.ClassCache.Error;
  EXPECT_TRUE(C.OutputsMatch);
  // This workload is exactly the mechanism's target: the optimized-code
  // speedup must be measurable and positive.
  ASSERT_TRUE(C.SpeedupOptimized.has_value());
  EXPECT_GT(*C.SpeedupOptimized, 0.0);
}

TEST(EngineStatsTest, RunnerReportsMissingRun) {
  BenchRun R = runSteadyState(EngineConfig(), "var x = 1;", 3);
  EXPECT_FALSE(R.Ok);
}

} // namespace
