//===- tests/TraceTest.cpp - Trace recorder, export and metrics -----------===//
///
/// Covers the observability layer end to end:
///
///  * TraceRecorder unit behavior: ring overflow keeps the newest events
///    while per-kind totals keep counting, mask parsing/filtering.
///  * Golden traced run of examples/chaos_storm.js: the exported Chrome
///    trace-event JSON parses, has the schema every event viewer expects,
///    and its per-kind totals reconcile *exactly* with the engine's
///    RunStats (deopts, Class Cache misses/exceptions).
///  * Tracing is observational: a traced run's stats, output and report
///    JSON are identical to the untraced run, and trace dumps themselves
///    are deterministic.
///  * MetricsRegistry export and the bench_diff metrics gate.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "core/BenchHarness.h"
#include "support/Trace.h"

#include <fstream>
#include <sstream>

using namespace ccjs;

#ifndef CCJS_REPO_ROOT
#error "tests/CMakeLists.txt must define CCJS_REPO_ROOT"
#endif

namespace {

std::string readRepoFile(const char *RelPath) {
  std::string Path = std::string(CCJS_REPO_ROOT) + "/" + RelPath;
  std::ifstream In(Path);
  EXPECT_TRUE(In.good()) << "cannot open " << Path;
  std::stringstream Buf;
  Buf << In.rdbuf();
  return Buf.str();
}

//===----------------------------------------------------------------------===//
// TraceRecorder units
//===----------------------------------------------------------------------===//

TEST(TraceTest, RingOverflowKeepsNewestAndTotalsKeepCounting) {
  TraceConfig Cfg;
  Cfg.Enabled = true;
  Cfg.Mask = (1u << NumTraceEventKinds) - 1;
  Cfg.Capacity = 4;
  TraceRecorder R(Cfg);
  double Now = 0;
  R.setClock([&Now] { return Now; });
  for (uint32_t I = 0; I < 10; ++I) {
    Now = I;
    R.record(TraceEventKind::ShapeCreated, 0, 0, 0, I, ~0u, 0);
  }
  EXPECT_EQ(R.accepted(), 10u);
  EXPECT_EQ(R.dropped(), 6u);
  EXPECT_EQ(R.total(TraceEventKind::ShapeCreated), 10u);
  std::vector<TraceEvent> S = R.snapshot();
  ASSERT_EQ(S.size(), 4u);
  // Oldest-first snapshot of the newest four events.
  for (uint32_t I = 0; I < 4; ++I) {
    EXPECT_EQ(S[I].A, 6 + I);
    EXPECT_EQ(S[I].Ts, 6.0 + I);
  }
}

TEST(TraceTest, MaskFiltersKinds) {
  TraceConfig Cfg;
  Cfg.Enabled = true;
  Cfg.Mask = traceBit(TraceEventKind::Deopt);
  TraceRecorder R(Cfg);
  EXPECT_TRUE(R.wants(TraceEventKind::Deopt));
  EXPECT_FALSE(R.wants(TraceEventKind::CcHit));
  R.record(TraceEventKind::CcHit, 1, 2, 3, 0, 0, 0);
  R.record(TraceEventKind::Deopt, 0, 1, 0, 7, 8, 9);
  EXPECT_EQ(R.accepted(), 1u);
  EXPECT_EQ(R.total(TraceEventKind::CcHit), 0u);
  EXPECT_EQ(R.total(TraceEventKind::Deopt), 1u);
}

TEST(TraceTest, DefaultMaskExcludesOnlyCcHits) {
  EXPECT_FALSE(DefaultTraceMask & traceBit(TraceEventKind::CcHit));
  for (unsigned K = 0; K < NumTraceEventKinds; ++K)
    if (static_cast<TraceEventKind>(K) != TraceEventKind::CcHit)
      EXPECT_TRUE(DefaultTraceMask & traceBit(static_cast<TraceEventKind>(K)))
          << TraceRecorder::kindName(static_cast<TraceEventKind>(K));
}

TEST(TraceTest, ParseMask) {
  uint32_t Mask = 0;
  std::string Err;
  EXPECT_TRUE(TraceRecorder::parseMask("all", Mask, &Err));
  EXPECT_EQ(Mask, (1u << NumTraceEventKinds) - 1);

  EXPECT_TRUE(TraceRecorder::parseMask("deopt,cc-miss", Mask, &Err));
  EXPECT_EQ(Mask, traceBit(TraceEventKind::Deopt) |
                      traceBit(TraceEventKind::CcMiss));

  EXPECT_FALSE(TraceRecorder::parseMask("deopt,bogus", Mask, &Err));
  EXPECT_NE(Err.find("bogus"), std::string::npos);
  EXPECT_FALSE(TraceRecorder::parseMask("", Mask, &Err));
}

TEST(TraceTest, KindNamesRoundTrip) {
  for (unsigned K = 0; K < NumTraceEventKinds; ++K) {
    TraceEventKind Kind = static_cast<TraceEventKind>(K), Back;
    ASSERT_TRUE(
        TraceRecorder::kindFromName(TraceRecorder::kindName(Kind), Back));
    EXPECT_EQ(Back, Kind);
  }
}

//===----------------------------------------------------------------------===//
// Golden traced run
//===----------------------------------------------------------------------===//

/// One traced chaos-storm run with everything recorded and a ring large
/// enough that nothing drops, so totals == events and both reconcile with
/// RunStats.
struct TracedStorm {
  Engine E;
  TracedStorm()
      : E(Engine::Options()
              .withClassCache()
              .withChaosSeed(5)
              .withTrace((1u << NumTraceEventKinds) - 1, 1u << 18)) {
    std::string Source = readRepoFile("examples/chaos_storm.js");
    EXPECT_TRUE(E.load(Source)) << E.lastError();
    EXPECT_TRUE(E.runTopLevel()) << E.lastError();
    for (int I = 0; I < 3; ++I) {
      E.callGlobal("run");
      EXPECT_FALSE(E.halted()) << E.lastError();
    }
  }
};

TEST(TraceTest, GoldenChaosStormChromeJsonIsSchemaValid) {
  TracedStorm S;
  ASSERT_NE(S.E.trace(), nullptr);
  std::string Text = S.E.trace()->toChromeJson().dump(2);

  std::string Err;
  std::optional<json::Value> Doc = json::Value::parse(Text, &Err);
  ASSERT_TRUE(Doc.has_value()) << Err;

  const json::Value *Events = Doc->find("traceEvents");
  ASSERT_NE(Events, nullptr);
  ASSERT_TRUE(Events->isArray());
  ASSERT_GT(Events->size(), 0u);
  double LastTs = -1;
  for (const json::Value &Ev : Events->elements()) {
    ASSERT_TRUE(Ev.isObject());
    const json::Value *Name = Ev.find("name");
    ASSERT_TRUE(Name && Name->isString());
    TraceEventKind K;
    EXPECT_TRUE(TraceRecorder::kindFromName(Name->asString(), K))
        << Name->asString();
    const json::Value *Ph = Ev.find("ph");
    ASSERT_TRUE(Ph && Ph->isString());
    EXPECT_EQ(Ph->asString(), "i");
    const json::Value *Ts = Ev.find("ts");
    ASSERT_TRUE(Ts && Ts->isNumber());
    // Simulated-cycle timestamps are monotonically non-decreasing.
    EXPECT_GE(Ts->asNumber(), LastTs);
    LastTs = Ts->asNumber();
    const json::Value *Pid = Ev.find("pid");
    ASSERT_TRUE(Pid && Pid->isNumber());
    const json::Value *Tid = Ev.find("tid");
    ASSERT_TRUE(Tid && Tid->isNumber());
    const json::Value *Args = Ev.find("args");
    ASSERT_TRUE(Args && Args->isObject());
  }

  // The ccjs metadata object carries totals for every kind plus the drop
  // count and the active mask.
  const json::Value *Meta = Doc->find("ccjs");
  ASSERT_TRUE(Meta && Meta->isObject());
  const json::Value *Totals = Meta->find("totals");
  ASSERT_TRUE(Totals && Totals->isObject());
  EXPECT_EQ(Totals->members().size(), NumTraceEventKinds);
  const json::Value *Dropped = Meta->find("dropped");
  ASSERT_TRUE(Dropped && Dropped->isNumber());
  EXPECT_EQ(Dropped->asNumber(), 0);
}

TEST(TraceTest, GoldenChaosStormCountsReconcileWithRunStats) {
  TracedStorm S;
  const TraceRecorder &T = *S.E.trace();
  ASSERT_EQ(T.dropped(), 0u) << "ring too small for exact reconciliation";
  RunStats Stats = S.E.stats();

  // Every speculation-failure deopt the engine counted is in the trace
  // (failure flag set), and vice versa.
  uint64_t FailureDeopts = 0;
  for (const TraceEvent &E : T.snapshot())
    if (E.Kind == TraceEventKind::Deopt && E.B8 != 0)
      ++FailureDeopts;
  EXPECT_EQ(FailureDeopts, Stats.Deopts);

  EXPECT_EQ(T.total(TraceEventKind::CcMiss), Stats.CcMisses);
  EXPECT_EQ(T.total(TraceEventKind::CcException), Stats.CcExceptions);
  // cc-hit + cc-miss == every Class Cache access.
  EXPECT_EQ(T.total(TraceEventKind::CcHit) + T.total(TraceEventKind::CcMiss),
            Stats.CcAccesses);
}

TEST(TraceTest, TracingIsObservational) {
  std::string Source = readRepoFile("examples/chaos_storm.js");
  auto Run = [&](bool Traced, RunStats &Stats) {
    Engine::Options O;
    O.withClassCache().withChaosSeed(5);
    if (Traced)
      O.withTrace();
    Engine E(O);
    EXPECT_TRUE(E.load(Source)) << E.lastError();
    EXPECT_TRUE(E.runTopLevel()) << E.lastError();
    for (int I = 0; I < 3; ++I)
      E.callGlobal("run");
    Stats = E.stats();
    return E.output();
  };
  RunStats Plain, Traced;
  std::string OutPlain = Run(false, Plain);
  std::string OutTraced = Run(true, Traced);
  EXPECT_EQ(OutPlain, OutTraced);
  EXPECT_EQ(Plain.CyclesTotal, Traced.CyclesTotal);
  EXPECT_EQ(Plain.EnergyTotal.total(), Traced.EnergyTotal.total());
  EXPECT_EQ(Plain.Instrs.total(), Traced.Instrs.total());
  EXPECT_EQ(Plain.Deopts, Traced.Deopts);
  EXPECT_EQ(Plain.CcMisses, Traced.CcMisses);
  // The fingerprint ignores observability config: traced and untraced
  // reports stay comparable and byte-identical.
  EngineConfig Off = Engine::Options().withClassCache().build();
  EngineConfig On = Engine::Options().withClassCache().withTrace()
                        .withMetrics().build();
  EXPECT_EQ(configFingerprint(Off), configFingerprint(On));
  EXPECT_EQ(configToJson(Off).dump(2), configToJson(On).dump(2));
}

TEST(TraceTest, TraceDumpIsDeterministic) {
  TracedStorm A, B;
  EXPECT_EQ(A.E.trace()->toChromeJson().dump(2),
            B.E.trace()->toChromeJson().dump(2));
}

//===----------------------------------------------------------------------===//
// Metrics registry and the bench_diff metrics gate
//===----------------------------------------------------------------------===//

TEST(TraceTest, MetricsRegistryExportIsInsertionOrdered) {
  MetricsRegistry M;
  M.counter("deopts_failure") = 3;
  M.counter("tier_ups") = 7;
  ++M.counter("deopts_failure");
  M.histogram("invalidation_fanout").observe(2);
  M.histogram("invalidation_fanout").observe(6);

  json::Value J = M.toJson();
  const json::Value *C = J.find("counters");
  ASSERT_TRUE(C && C->isObject());
  ASSERT_EQ(C->members().size(), 2u);
  EXPECT_EQ(C->members()[0].first, "deopts_failure");
  EXPECT_EQ(C->members()[0].second.asNumber(), 4);
  EXPECT_EQ(C->members()[1].first, "tier_ups");
  const json::Value *H = J.findPath("histograms.invalidation_fanout");
  ASSERT_NE(H, nullptr);
  EXPECT_EQ(H->find("count")->asNumber(), 2);
  EXPECT_EQ(H->find("sum")->asNumber(), 8);
  EXPECT_EQ(H->find("mean")->asNumber(), 4);
  EXPECT_EQ(H->find("min")->asNumber(), 2);
  EXPECT_EQ(H->find("max")->asNumber(), 6);
}

TEST(TraceTest, EngineCollectsMetricsWhenEnabled) {
  Engine E(Engine::Options().withClassCache().withMetrics()
               .withTiering(2, 50));
  ASSERT_TRUE(E.load(R"js(
function Pt(x) { this.x = x; }
var ps = [];
var i; for (i = 0; i < 20; i++) ps[i] = new Pt(i);
function run() { var s = 0; var i; for (i = 0; i < 20; i++) s += ps[i].x; return s; }
var j; for (j = 0; j < 10; j++) run();
)js"));
  ASSERT_TRUE(E.runTopLevel()) << E.lastError();
  ASSERT_NE(E.metrics(), nullptr);
  const json::Value *TierUps = E.metrics()->toJson().findPath(
      "counters.tier_ups");
  ASSERT_NE(TierUps, nullptr);
  EXPECT_GE(TierUps->asNumber(), 1);
}

TEST(TraceTest, DiffReportsGatesDeoptCounterGrowth) {
  auto MakeReport = [](uint64_t FailureDeopts, uint64_t TierUps) {
    BenchReport R("ccjs_run", Engine::Options().build());
    MetricsRegistry M;
    M.counter("deopts_failure") = FailureDeopts;
    M.counter("tier_ups") = TierUps;
    R.setMetrics(M.toJson());
    return R.toJson();
  };
  json::Value Old = MakeReport(4, 10);

  // More failure deopts: regression.
  DiffResult Worse = diffReports(Old, MakeReport(9, 10), 0.1);
  ASSERT_TRUE(Worse.Comparable) << Worse.Error;
  EXPECT_TRUE(Worse.hasRegressions());

  // --ignore-metrics suppresses the section entirely.
  DiffResult Ignored = diffReports(Old, MakeReport(9, 10), 0.1,
                                   /*IgnoreMetrics=*/true);
  EXPECT_FALSE(Ignored.hasRegressions());
  EXPECT_TRUE(Ignored.Changes.empty());

  // Non-gating counters move informationally, never regress.
  DiffResult Info = diffReports(Old, MakeReport(4, 99), 0.1);
  EXPECT_FALSE(Info.hasRegressions());
  ASSERT_EQ(Info.Changes.size(), 1u);
  EXPECT_EQ(Info.Changes[0].Metric, "counters.tier_ups");

  // A report without the section diffs cleanly against one with it.
  BenchReport Bare("ccjs_run", Engine::Options().build());
  DiffResult Missing = diffReports(Old, Bare.toJson(), 0.1);
  EXPECT_TRUE(Missing.Comparable);
  EXPECT_FALSE(Missing.hasRegressions());
}

} // namespace
