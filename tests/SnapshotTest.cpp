//===- tests/SnapshotTest.cpp - Profile snapshot & warm-start -------------===//
///
/// The profile-snapshot contract (DESIGN.md 4.11):
///   * capture is canonical (same state -> same bytes) and restoring a
///     snapshot then immediately recapturing reproduces it byte-for-byte;
///   * a warm-started engine converges to the same outputs, stats image
///     and metrics image as the continuously-warmed engine it came from —
///     across every dispatch mode and check-removal backend;
///   * corruption of any kind (truncation, bad magic, future version,
///     payload damage) is rejected with a one-line reason, never a crash
///     and never a half-restore: the engine cold-starts fully usable;
///   * the config fingerprint gates restore on the knobs that shape
///     profile state (tiering thresholds, hardware model) and on nothing
///     else — switching dispatch mode or check-removal backend must NOT
///     invalidate a snapshot.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "core/BenchHarness.h"
#include "core/Metrics.h"
#include "core/ProfileSnapshot.h"
#include "vm/InvariantAuditor.h"
#include "vm/VMState.h"

#include "DiffPrograms.h"

#include <cstdint>
#include <string>
#include <vector>

using namespace ccjs;

namespace {

/// A small program that tiers up quickly under hotConfig thresholds and
/// exercises shapes, feedback and (when enabled) the Class Cache.
const char *WarmSource = R"js(
function Pt(x, y) { this.x = x; this.y = y; }
function sum(ps, n) {
  var s = 0; var i;
  for (i = 0; i < n; i++) { s = s + ps[i].x * 3 + ps[i].y; }
  return s;
}
var ps = []; var i;
for (i = 0; i < 24; i++) { ps[i] = new Pt(i, i * 2); }
var a = 0;
for (i = 0; i < 40; i++) { a = a + sum(ps, 24); }
print(a);
)js";

EngineConfig warmConfig(CheckRemovalBackend B = CheckRemovalBackend::Both) {
  EngineConfig C = test::hotConfig();
  C.CheckRemoval = B;
  C.ClassCacheEnabled = B == CheckRemovalBackend::ClassCache ||
                        B == CheckRemovalBackend::Both;
  C.ProfilePersistence = true;
  return C;
}

/// Warms an engine on \p Source and returns its profile snapshot.
std::vector<uint8_t> warmSnapshot(const EngineConfig &Cfg,
                                  const char *Source = WarmSource) {
  Engine E(Cfg);
  EXPECT_TRUE(E.load(Source) && E.runTopLevel()) << E.lastError();
  return E.snapshotProfile();
}

/// Constructs an engine restoring \p Snap and expects the restore to be
/// rejected with \p ExpectErr; the engine must still run programs cleanly.
void expectRejected(const EngineConfig &Cfg, std::vector<uint8_t> Snap,
                    const std::string &ExpectErr) {
  EngineConfig C = Cfg;
  C.ProfileSnapshot =
      std::make_shared<const std::vector<uint8_t>>(std::move(Snap));
  Engine E(C);
  EXPECT_EQ(E.snapshotRestoreError(), ExpectErr);
  // Never a half-restore: the engine is in its ordinary cold-start state.
  ASSERT_TRUE(E.load("print(2 + 3);") && E.runTopLevel()) << E.lastError();
  EXPECT_EQ(E.output(), "5\n");
}

/// The reload protocol both sides of an equivalence comparison follow: a
/// second service request for the same program on an already-warm engine.
struct Image {
  bool Ok = false;
  std::string Output, Stats, Metrics;
  uint64_t AuditFailures = 0;
};

Image secondRun(Engine &E, const char *Source) {
  Image I;
  EXPECT_TRUE(E.load(Source)) << E.lastError();
  E.beginServiceRequest();
  I.Ok = E.runTopLevel();
  E.auditNow("final");
  I.Output = E.output();
  I.Stats = statsToJson(E.stats()).dump(2);
  if (const MetricsRegistry *M = E.metrics())
    I.Metrics = M->render();
  if (const InvariantAuditor *A = E.auditor())
    I.AuditFailures = A->failureCount();
  return I;
}

} // namespace

//===----------------------------------------------------------------------===//
// Determinism and the restore fixpoint
//===----------------------------------------------------------------------===//

TEST(SnapshotTest, CaptureIsCanonical) {
  std::vector<uint8_t> A = warmSnapshot(warmConfig());
  std::vector<uint8_t> B = warmSnapshot(warmConfig());
  EXPECT_EQ(A, B) << "identical runs must capture byte-identical snapshots";
}

TEST(SnapshotTest, RestoreThenRecaptureIsByteIdentical) {
  std::vector<uint8_t> Snap = warmSnapshot(warmConfig());
  EngineConfig C = warmConfig();
  C.ProfileSnapshot = std::make_shared<const std::vector<uint8_t>>(Snap);
  Engine E(C);
  ASSERT_TRUE(E.snapshotRestoreError().empty()) << E.snapshotRestoreError();
  EXPECT_EQ(E.snapshotProfile(), Snap)
      << "restore -> immediate recapture must be a fixpoint";
}

//===----------------------------------------------------------------------===//
// Corruption matrix: every damage mode rejects cleanly
//===----------------------------------------------------------------------===//

TEST(SnapshotTest, RejectsTruncatedHeader) {
  std::vector<uint8_t> Snap = warmSnapshot(warmConfig());
  Snap.resize(10);
  expectRejected(warmConfig(), std::move(Snap),
                 "snapshot truncated: shorter than header");
}

TEST(SnapshotTest, RejectsEmptyBuffer) {
  expectRejected(warmConfig(), {},
                 "snapshot truncated: shorter than header");
}

TEST(SnapshotTest, RejectsBadMagic) {
  std::vector<uint8_t> Snap = warmSnapshot(warmConfig());
  Snap[0] ^= 0xFF;
  expectRejected(warmConfig(), std::move(Snap),
                 "snapshot rejected: bad magic");
}

TEST(SnapshotTest, RejectsFutureVersion) {
  std::vector<uint8_t> Snap = warmSnapshot(warmConfig());
  // Version is the little-endian u32 right after the 8-byte magic.
  uint32_t Future = ProfileSnapshotVersion + 1;
  for (unsigned I = 0; I < 4; ++I)
    Snap[8 + I] = static_cast<uint8_t>(Future >> (8 * I));
  expectRejected(warmConfig(), std::move(Snap),
                 "snapshot rejected: unsupported format version " +
                     std::to_string(Future));
}

TEST(SnapshotTest, RejectsTruncatedPayload) {
  std::vector<uint8_t> Snap = warmSnapshot(warmConfig());
  Snap.resize(Snap.size() - 7);
  expectRejected(warmConfig(), std::move(Snap),
                 "snapshot truncated: payload length mismatch");
}

TEST(SnapshotTest, RejectsPayloadBitFlip) {
  std::vector<uint8_t> Snap = warmSnapshot(warmConfig());
  // Flip one bit in the middle of the payload; the CRC must catch it long
  // before any section parser could be confused by it.
  Snap[Snap.size() / 2] ^= 0x10;
  expectRejected(warmConfig(), std::move(Snap),
                 "snapshot rejected: payload CRC mismatch");
}

//===----------------------------------------------------------------------===//
// Config fingerprint: what invalidates and what must not
//===----------------------------------------------------------------------===//

TEST(SnapshotTest, RejectsTieringThresholdMismatch) {
  std::vector<uint8_t> Snap = warmSnapshot(warmConfig());
  EngineConfig Other = warmConfig();
  Other.HotInvocationThreshold += 1;
  Other.ProfileSnapshot =
      std::make_shared<const std::vector<uint8_t>>(std::move(Snap));
  Engine E(Other);
  EXPECT_NE(E.snapshotRestoreError().find("config fingerprint mismatch"),
            std::string::npos)
      << E.snapshotRestoreError();
  ASSERT_TRUE(E.load("print(1);") && E.runTopLevel());
}

TEST(SnapshotTest, DispatchModeDoesNotInvalidate) {
  std::vector<uint8_t> Snap = warmSnapshot(warmConfig());
  for (DispatchMode M : {DispatchMode::Switch, DispatchMode::Threaded,
                         DispatchMode::Fused}) {
    EngineConfig C = warmConfig();
    C.Dispatch = M;
    C.ProfileSnapshot = std::make_shared<const std::vector<uint8_t>>(Snap);
    Engine E(C);
    EXPECT_TRUE(E.snapshotRestoreError().empty())
        << "dispatch=" << dispatchModeName(M) << ": "
        << E.snapshotRestoreError();
  }
}

TEST(SnapshotTest, CheckRemovalBackendDoesNotInvalidate) {
  // A snapshot taken under one backend restores under every other; the
  // cross-backend Class List rebuild handles the ClassCache-off donor.
  for (CheckRemovalBackend From :
       {CheckRemovalBackend::None, CheckRemovalBackend::Both}) {
    std::vector<uint8_t> Snap = warmSnapshot(warmConfig(From));
    for (CheckRemovalBackend To :
         {CheckRemovalBackend::None, CheckRemovalBackend::ClassCache,
          CheckRemovalBackend::Bbv, CheckRemovalBackend::Both}) {
      EngineConfig C = warmConfig(To);
      C.ProfileSnapshot = std::make_shared<const std::vector<uint8_t>>(Snap);
      Engine E(C);
      EXPECT_TRUE(E.snapshotRestoreError().empty())
          << "from=" << static_cast<int>(From)
          << " to=" << static_cast<int>(To) << ": "
          << E.snapshotRestoreError();
      ASSERT_TRUE(E.load(WarmSource) && E.runTopLevel()) << E.lastError();
    }
  }
}


//===----------------------------------------------------------------------===//
// Warm/continuous convergence across dispatch modes and backends
//===----------------------------------------------------------------------===//

TEST(SnapshotTest, WarmEngineConvergesAcrossModesAndBackends) {
  // The headline invariant, over a corpus subset small enough for a unit
  // test (ccjs-gen's snapshot leg sweeps the generated corpus): for every
  // dispatch mode x check-removal backend, a snapshot/restore run's second
  // request produces the same output, stats image, metrics image and
  // re-captured snapshot as the continuous engine's.
  const DispatchMode Modes[] = {DispatchMode::Switch, DispatchMode::Threaded,
                                DispatchMode::Fused};
  const CheckRemovalBackend Backends[] = {
      CheckRemovalBackend::None, CheckRemovalBackend::ClassCache,
      CheckRemovalBackend::Bbv, CheckRemovalBackend::Both};
  for (unsigned P = 0; P < 6; ++P) {
    const test::DiffProgram &Prog = test::Programs[P];
    for (DispatchMode M : Modes)
      for (CheckRemovalBackend B : Backends) {
        EngineConfig Base = warmConfig(B);
        Base.Dispatch = M;
        Base.MetricsEnabled = true;
        Base.AuditInvariants = true;

        Engine Cont(Base);
        ASSERT_TRUE(Cont.load(Prog.Source)) << Prog.Name;
        Cont.runTopLevel();
        std::vector<uint8_t> Snap = Cont.snapshotProfile();

        EngineConfig WarmCfg = Base;
        WarmCfg.ProfileSnapshot =
            std::make_shared<const std::vector<uint8_t>>(std::move(Snap));
        Engine Warm(WarmCfg);
        ASSERT_TRUE(Warm.snapshotRestoreError().empty())
            << Prog.Name << ": " << Warm.snapshotRestoreError();

        Image CI = secondRun(Cont, Prog.Source);
        Image WI = secondRun(Warm, Prog.Source);
        std::string Tag = std::string(Prog.Name) + " dispatch=" +
                          dispatchModeName(M) + " backend=" +
                          std::to_string(static_cast<int>(B));
        EXPECT_EQ(CI.Ok, WI.Ok) << Tag;
        EXPECT_EQ(CI.Output, WI.Output) << Tag;
        EXPECT_EQ(CI.Stats, WI.Stats) << Tag;
        EXPECT_EQ(CI.Metrics, WI.Metrics) << Tag;
        EXPECT_EQ(WI.AuditFailures, 0u) << Tag;
        EXPECT_EQ(Cont.snapshotProfile(), Warm.snapshotProfile())
            << Tag << ": re-captured snapshots diverged";
      }
  }
}
