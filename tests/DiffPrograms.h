//===- tests/DiffPrograms.h - Shared differential program corpus -*- C++ -*-===//
///
/// The corpus of self-checking programs used by DifferentialTest (tier and
/// config equivalence) and ChaosTest (equivalence under fault injection).
/// Every program defines work at the top level and prints a checksum.
///
//===----------------------------------------------------------------------===//

#ifndef CCJS_TESTS_DIFFPROGRAMS_H
#define CCJS_TESTS_DIFFPROGRAMS_H

namespace ccjs {
namespace test {

struct DiffProgram {
  const char *Name;
  const char *Source;
};

const DiffProgram Programs[] = {
    {"smi_loop", R"js(
function run() { var s = 0; var i; for (i = 0; i < 500; i++) s += i * 3 - 1; return s; }
var j; for (j = 0; j < 12; j++) print(run());
)js"},

    {"double_kernel", R"js(
function run() { var x = 0.1; var i; for (i = 0; i < 300; i++) x = x * 1.003 + 0.01; return x; }
var j; var r; for (j = 0; j < 12; j++) r = run();
print(r > 0 && r < 100);
print(Math.floor(r * 1000));
)js"},

    {"object_fields", R"js(
function Vec(x, y, z) { this.x = x; this.y = y; this.z = z; }
function dot(a, b) { return a.x * b.x + a.y * b.y + a.z * b.z; }
var vs = [];
var i; for (i = 0; i < 50; i++) vs[i] = new Vec(i, i + 1, i + 2);
function run() { var s = 0; var i; for (i = 0; i < 49; i++) s += dot(vs[i], vs[i + 1]); return s; }
var j; for (j = 0; j < 12; j++) print(run());
)js"},

    {"poly_sites", R"js(
function A() { this.k = 1; }
function B() { this.tag = 0; this.k = 2; }
function C() { this.t1 = 0; this.t2 = 0; this.k = 3; }
var objs = [];
var i; for (i = 0; i < 60; i++) {
  if (i % 3 == 0) objs[i] = new A();
  else if (i % 3 == 1) objs[i] = new B();
  else objs[i] = new C();
}
function run() { var s = 0; var i; for (i = 0; i < 60; i++) s += objs[i].k; return s; }
var j; for (j = 0; j < 12; j++) print(run());
)js"},

    {"mid_run_shape_break", R"js(
function Node(v) { this.v = v; }
var nodes = [];
var i; for (i = 0; i < 40; i++) nodes[i] = new Node(i);
function total() { var s = 0; var i; for (i = 0; i < 40; i++) s += nodes[i].v; return s; }
var j; for (j = 0; j < 8; j++) print(total());
nodes[7].v = 3.5;           // SMI slot becomes a double.
print(total());
nodes[9].v = 'str';         // And then a string (generic add).
print(total());
)js"},

    {"elements_mixed", R"js(
var a = [];
var i; for (i = 0; i < 64; i++) a[i] = i;
function run() {
  var s = 0; var i;
  for (i = 0; i < 64; i++) s += a[i];
  for (i = 0; i < 64; i++) a[i] = s % 97 + i;
  return s;
}
var j; for (j = 0; j < 12; j++) print(run());
a[3] = 0.5;                 // Elements kind breaks to double.
print(run());
)js"},

    {"string_building", R"js(
function run() {
  var s = ''; var i;
  for (i = 0; i < 30; i++) s = s + String.fromCharCode(65 + (i % 26));
  return s;
}
var j; var r; for (j = 0; j < 12; j++) r = run();
print(r);
print(r.length);
print(r.charCodeAt(5));
)js"},

    {"branches_and_logic", R"js(
function classify(n) {
  if (n < 0) return 'neg';
  if (n == 0) return 'zero';
  return n % 2 == 0 ? 'even' : 'odd';
}
function run() {
  var out = ''; var i;
  for (i = -3; i < 10; i++) out = out + classify(i) + ',';
  return out;
}
var j; for (j = 0; j < 12; j++) print(run());
)js"},

    {"recursion_hot", R"js(
function fib(n) { if (n < 2) return n; return fib(n - 1) + fib(n - 2); }
function run() { return fib(14); }
var j; for (j = 0; j < 12; j++) print(run());
)js"},

    {"transitions_in_loop", R"js(
function run() {
  var s = 0; var i;
  for (i = 0; i < 40; i++) {
    var o = {};
    o.a = i;
    o.b = i * 2;
    s += o.a + o.b;
  }
  return s;
}
var j; for (j = 0; j < 12; j++) print(run());
)js"},

    {"bitops_kernel", R"js(
function run() {
  var h = 0x12345678; var i;
  for (i = 0; i < 200; i++) {
    h = (h << 5) ^ (h >>> 3) ^ i;
    h = h & 0x7fffffff;
  }
  return h;
}
var j; for (j = 0; j < 12; j++) print(run());
)js"},

    {"method_calls", R"js(
function Counter() { this.n = 0; }
function bumpBy(d) { this.n += d; return this.n; }
var c = new Counter();
c.bump = bumpBy;
function run() { var i; for (i = 0; i < 50; i++) c.bump(2); return c.n; }
var j; for (j = 0; j < 12; j++) print(run());
)js"},

    {"array_growth_push", R"js(
function run() {
  var a = []; var i;
  for (i = 0; i < 100; i++) a.push(i * i);
  return a[99] + a.length;
}
var j; for (j = 0; j < 12; j++) print(run());
)js"},

    {"overflow_properties", R"js(
function run() {
  var o = {}; var i;
  // Far beyond the in-object capacity: exercises the overflow store path.
  o.p0 = 0; o.p1 = 1; o.p2 = 2; o.p3 = 3; o.p4 = 4; o.p5 = 5;
  o.p6 = 6; o.p7 = 7; o.p8 = 8; o.p9 = 9; o.p10 = 10; o.p11 = 11;
  o.p12 = 12; o.p13 = 13; o.p14 = 14; o.p15 = 15;
  return o.p0 + o.p7 + o.p15;
}
var j; for (j = 0; j < 12; j++) print(run());
)js"},

    {"mixed_number_compare", R"js(
function run() {
  var c = 0; var i;
  for (i = 0; i < 100; i++) {
    var x = i % 2 == 0 ? i : i + 0.5;
    if (x < 50) c++;
    if (x >= 25.5) c += 2;
  }
  return c;
}
var j; for (j = 0; j < 12; j++) print(run());
)js"},

    // Regression for ccjs-gen seed 78 (and the generator's NaN-index edge
    // case): NaN/Infinity element indices used to hit an undefined int64
    // cast in both tiers' element paths; they must read as undefined, in
    // every tier, without tripping UBSan.
    {"elem_index_nan_inf", R"js(
var arr = []; var i;
for (i = 0; i < 32; i++) arr[i] = i * 3;
function run(m) {
  var s = 0; var i;
  for (i = 0; i < 60; i++) {
    var x = arr[m < 3 ? (i & 31) : (0 / 0)];
    var y = arr[m < 3 ? (i & 31) : (1 / 0)];
    var z = arr[m < 3 ? (i & 31) : (0 - 1) / 0];
    s = (s + (x == undefined ? 1 : x) + (y == undefined ? 1 : y)
         + (z == undefined ? 1 : z)) & 65535;
  }
  return s;
}
var j; for (j = 0; j < 8; j++) print(run(j));
)js"},
};

/// Programs whose reference behavior includes a deliberate baseline halt.
/// runProgram() treats halts as failures, so these are exercised through
/// the cross-tier oracle (GeneratedDifferentialTest) instead: every tier
/// must halt at the same point with the same error and output prefix.
const DiffProgram SoundnessPrograms[] = {
    // Minimized by ccjs-gen --seed=63 --minimize: a megamorphic element
    // site (string keys on pool objects, smi keys on the array) whose
    // index turns boolean after tier-up. The baseline interpreter halts
    // on the boolean index; GenericGetElemOp used to coerce it through
    // toNumber (true -> arr[1]) and run to completion.
    {"gen_seed63_bool_index", R"js(
function K0(i) {
}
var pool = []; var arr = []; var i;
for (i = 0; i < 16; i++) {
if ((i % 2) == 0) {
pool[i] = new K0(i);
}
}
function main(m) {
var t1; var i;
for (i = 0; i < 62; i++) {
t1 = ((i & 1) == 0 ? pool[(i & 15)] : arr)[((i & 1) == 0 ? 's0' : (m < 4 ? (i & 31) : (i >= 0)))];
}
}
var j;
for (j = 0; j < 6; j++) {
print(main(j));
}
)js"},

    // Companion store-side case: a NaN element index in a store is
    // non-numeric in the baseline ("baseline: non-numeric array index in
    // store"); the generic store must deopt rather than cast it.
    {"elem_store_nan_index", R"js(
var arr = []; var i;
for (i = 0; i < 32; i++) arr[i] = i;
function run(m) {
  var s = 0; var i;
  for (i = 0; i < 60; i++) {
    arr[m < 3 ? (i & 31) : (0 / 0)] = (i & 255);
    s = (s + arr[(i & 31)]) & 65535;
  }
  return s;
}
var j; for (j = 0; j < 8; j++) print(run(j));
)js"},
};

} // namespace test
} // namespace ccjs

#endif // CCJS_TESTS_DIFFPROGRAMS_H
