//===- tests/WorkloadsTest.cpp - Workload integration ---------------------===//
///
/// Every registered workload must: parse, run to steady state under every
/// engine configuration, and print the same checksum everywhere. This is
/// the system's broadest integration property test.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "core/Runner.h"
#include "workloads/Workloads.h"

using namespace ccjs;

namespace {

std::vector<Workload> allAsVector() {
  size_t N = 0;
  const Workload *W = allWorkloads(&N);
  return std::vector<Workload>(W, W + N);
}

class WorkloadTest : public ::testing::TestWithParam<Workload> {};

TEST_P(WorkloadTest, RunsAndMatchesAcrossConfigs) {
  const Workload &W = GetParam();
  Comparison C = compareConfigs(W.Source, EngineConfig(), 4);
  ASSERT_TRUE(C.Baseline.Ok) << W.Name << ": " << C.Baseline.Error;
  ASSERT_TRUE(C.ClassCache.Ok) << W.Name << ": " << C.ClassCache.Error;
  EXPECT_TRUE(C.OutputsMatch) << W.Name << "\nbaseline:\n"
                              << C.Baseline.Output << "\nclass cache:\n"
                              << C.ClassCache.Output;
  EXPECT_FALSE(C.Baseline.Output.empty())
      << W.Name << " printed no checksum";
}

TEST_P(WorkloadTest, SteadyStateIsMostlyOptimized) {
  const Workload &W = GetParam();
  BenchRun R = runSteadyState(EngineConfig(), W.Source, 6);
  ASSERT_TRUE(R.Ok) << W.Name << ": " << R.Error;
  // In steady state the measured iteration should spend the bulk of its
  // instructions in optimized code (the paper measures the 10th run).
  // String- and runtime-dominated workloads legitimately spend much of
  // their time in non-optimized code (the paper makes the same point about
  // string-base64), so the selected set carries the stronger bound.
  double OptShare = double(R.Steady.Instrs.optimizedTotal()) /
                    double(R.Steady.Instrs.total());
  EXPECT_GT(OptShare, W.Selected ? 0.3 : 0.05)
      << W.Name << " runs too little optimized code";
}

INSTANTIATE_TEST_SUITE_P(All, WorkloadTest,
                         ::testing::ValuesIn(allAsVector()),
                         [](const auto &Info) {
                           std::string N = Info.param.Name;
                           for (char &C : N)
                             if (C == '-')
                               C = '_';
                           return N;
                         });

TEST(WorkloadRegistryTest, CountsAndLookup) {
  size_t N = 0;
  allWorkloads(&N);
  EXPECT_GE(N, 40u);
  EXPECT_NE(findWorkload("ai-astar"), nullptr);
  EXPECT_EQ(findWorkload("no-such-benchmark"), nullptr);
  EXPECT_TRUE(findWorkload("ai-astar")->Selected);
  EXPECT_FALSE(findWorkload("bitops-bits-in-byte")->Selected);
}

TEST(WorkloadRegistryTest, SelectedSetMatchesPaper) {
  // 26 selected benchmarks (the paper's >1%-overhead set, section 4.1).
  size_t N = 0;
  const Workload *All = allWorkloads(&N);
  size_t Selected = 0;
  for (size_t I = 0; I < N; ++I)
    if (All[I].Selected)
      ++Selected;
  EXPECT_EQ(Selected, 26u);
}

} // namespace
