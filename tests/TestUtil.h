//===- tests/TestUtil.h - Shared test helpers -------------------*- C++ -*-===//

#ifndef CCJS_TESTS_TESTUTIL_H
#define CCJS_TESTS_TESTUTIL_H

#include "core/Engine.h"

#include <gtest/gtest.h>

#include <string>
#include <string_view>

namespace ccjs::test {

/// Runs a program to completion under \p Config and returns its print()
/// output. Fails the current test on any engine error.
inline std::string runProgram(std::string_view Source,
                              const EngineConfig &Config = EngineConfig()) {
  Engine E(Config);
  if (!E.load(Source)) {
    ADD_FAILURE() << "load failed: " << E.lastError();
    return "<load error>";
  }
  if (!E.runTopLevel()) {
    ADD_FAILURE() << "run failed: " << E.lastError();
    return "<runtime error>";
  }
  return E.output();
}

/// Runs a program under a configuration with aggressive tiering so the
/// optimizing tier is exercised quickly.
inline EngineConfig hotConfig(bool ClassCache = false) {
  EngineConfig C;
  C.ClassCacheEnabled = ClassCache;
  C.HotInvocationThreshold = 2;
  C.HotLoopThreshold = 50;
  return C;
}

} // namespace ccjs::test

#endif // CCJS_TESTS_TESTUTIL_H
