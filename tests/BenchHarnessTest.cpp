//===- tests/BenchHarnessTest.cpp - Bench harness tests -------------------===//
///
/// Covers the harness guarantees the bench binaries rely on: parallel
/// fan-out produces byte-identical results to the serial run, unmeasurable
/// comparison metrics surface as absent (never as 0%), reports validate
/// against the schema, and diffReports flags regressions.
///
//===----------------------------------------------------------------------===//

#include "core/BenchHarness.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <vector>

using namespace ccjs;

namespace {

const char *TieringProgram = R"js(
function P(x) { this.x = x; }
var objs = [];
var i; for (i = 0; i < 64; i++) objs[i] = new P(i);
function run() {
  var s = 0; var i;
  for (i = 0; i < 64; i++) s += objs[i].x;
  return s;
}
print('ready');
)js";

//===----------------------------------------------------------------------===//
// Zero-denominator Comparison metrics (the Runner.cpp bugfix)
//===----------------------------------------------------------------------===//

TEST(ComparisonMetricsTest, UnmeasurableOptimizedMetricsAreAbsent) {
  // With tiering disabled nothing ever runs optimized: the optimized-code
  // speedup has a zero denominator on both sides. It used to print as a
  // silent "0.0%"; it must be absent instead.
  EngineConfig NoOpt;
  NoOpt.HotInvocationThreshold = ~0u;
  NoOpt.HotLoopThreshold = ~0u;
  Comparison C = compareConfigs(TieringProgram, NoOpt, 5);
  ASSERT_TRUE(C.Baseline.Ok) << C.Baseline.Error;
  ASSERT_TRUE(C.ClassCache.Ok) << C.ClassCache.Error;
  ASSERT_TRUE(C.valid());
  EXPECT_FALSE(C.SpeedupOptimized.has_value());
  EXPECT_FALSE(C.EnergyReductionOptimized.has_value());
  // Whole-application cycles are always nonzero, so those stay measurable.
  EXPECT_TRUE(C.SpeedupWhole.has_value());
  EXPECT_TRUE(C.EnergyReductionWhole.has_value());
}

TEST(ComparisonMetricsTest, AbsentMetricsSerializeAsNull) {
  EngineConfig NoOpt;
  NoOpt.HotInvocationThreshold = ~0u;
  NoOpt.HotLoopThreshold = ~0u;
  Comparison C = compareConfigs(TieringProgram, NoOpt, 5);
  ASSERT_TRUE(C.valid());
  json::Value J = comparisonToJson(C, /*IncludeRuns=*/false);
  const json::Value *Opt = J.find("speedup_optimized_pct");
  ASSERT_NE(Opt, nullptr);
  EXPECT_TRUE(Opt->isNull());
  const json::Value *Whole = J.find("speedup_whole_pct");
  ASSERT_NE(Whole, nullptr);
  EXPECT_TRUE(Whole->isNumber());
}

TEST(ComparisonMetricsTest, MeasurableProgramHasAllMetrics) {
  Comparison C = compareConfigs(TieringProgram, EngineConfig(), 10);
  ASSERT_TRUE(C.valid());
  EXPECT_TRUE(C.SpeedupWhole.has_value());
  EXPECT_TRUE(C.SpeedupOptimized.has_value());
  EXPECT_TRUE(C.EnergyReductionWhole.has_value());
  EXPECT_TRUE(C.EnergyReductionOptimized.has_value());
}

//===----------------------------------------------------------------------===//
// Parallel fan-out
//===----------------------------------------------------------------------===//

TEST(RunIndexedTest, CoversEveryIndexExactlyOnce) {
  for (unsigned Jobs : {1u, 2u, 4u, 7u}) {
    std::vector<std::atomic<int>> Hits(23);
    runIndexed(Hits.size(), Jobs, [&](size_t I) { Hits[I].fetch_add(1); });
    for (size_t I = 0; I < Hits.size(); ++I)
      EXPECT_EQ(Hits[I].load(), 1) << "index " << I << " jobs " << Jobs;
  }
}

TEST(RunIndexedTest, MoreJobsThanWork) {
  std::atomic<int> Count{0};
  runIndexed(2, 16, [&](size_t) { Count.fetch_add(1); });
  EXPECT_EQ(Count.load(), 2);
}

// The tentpole guarantee: a parallel sweep must be byte-identical to the
// serial one — same Comparison results in the same workload order, hence
// identical tables and JSON.
TEST(ParallelDeterminismTest, JobsFourMatchesSerialByteForByte) {
  size_t Count = 0;
  const Workload *All = allWorkloads(&Count);
  ASSERT_GE(Count, 3u);
  std::vector<const Workload *> Ws = {&All[0], &All[1], &All[2]};

  const int Iterations = 5;
  std::vector<Comparison> Serial = compareWorkloads(Ws, EngineConfig(), 1,
                                                    Iterations);
  std::vector<Comparison> Parallel = compareWorkloads(Ws, EngineConfig(), 4,
                                                      Iterations);
  ASSERT_EQ(Serial.size(), Ws.size());
  ASSERT_EQ(Parallel.size(), Ws.size());

  BenchReport SerialReport("determinism", EngineConfig());
  BenchReport ParallelReport("determinism", EngineConfig());
  for (size_t I = 0; I < Ws.size(); ++I) {
    SerialReport.addComparison(*Ws[I], Serial[I]);
    ParallelReport.addComparison(*Ws[I], Parallel[I]);
  }
  // Byte-for-byte, not approximately: the simulator is deterministic and
  // rendering happens serially after the fan-out.
  EXPECT_EQ(SerialReport.toJson().dump(2), ParallelReport.toJson().dump(2));
}

//===----------------------------------------------------------------------===//
// Report schema
//===----------------------------------------------------------------------===//

TEST(BenchReportTest, RoundTripsAndValidates) {
  EngineConfig Cfg;
  BenchRun R = runSteadyState(Cfg, TieringProgram, 5);
  ASSERT_TRUE(R.Ok) << R.Error;

  BenchReport Report("unit_test", Cfg);
  Workload W{"w1", "suite1", "", true};
  Report.addRun(W, R);
  Report.setSummary("some_avg", 1.25);

  std::string Text = Report.toJson().dump(2);
  std::string Err;
  std::optional<json::Value> Parsed = json::Value::parse(Text, &Err);
  ASSERT_TRUE(Parsed.has_value()) << Err;
  EXPECT_TRUE(validateReport(*Parsed, &Err)) << Err;

  EXPECT_EQ(Parsed->findPath("schema_version")->asNumber(),
            BenchReportSchemaVersion);
  EXPECT_EQ(Parsed->findPath("generator")->asString(), "unit_test");
  EXPECT_EQ(Parsed->findPath("config.fingerprint")->asString(),
            configFingerprint(Cfg));
  const json::Value *Workloads = Parsed->find("workloads");
  ASSERT_NE(Workloads, nullptr);
  ASSERT_EQ(Workloads->size(), 1u);
  const json::Value &Entry = Workloads->at(0);
  EXPECT_EQ(Entry.find("name")->asString(), "w1");
  const json::Value *Stats = Entry.find("stats");
  ASSERT_NE(Stats, nullptr);
  EXPECT_GT(Stats->findPath("instructions.total")->asNumber(), 0.0);
  EXPECT_GT(Stats->findPath("cycles.total")->asNumber(), 0.0);
  EXPECT_GT(Stats->findPath("energy_pj.total")->asNumber(), 0.0);
  ASSERT_NE(Stats->findPath("mem.dl1_hit_rate"), nullptr);
  EXPECT_EQ(Parsed->findPath("summary.some_avg")->asNumber(), 1.25);
}

TEST(BenchReportTest, ValidateRejectsJunk) {
  std::string Err;
  json::Value NotObj = json::Value::array();
  EXPECT_FALSE(validateReport(NotObj, &Err));

  std::optional<json::Value> MissingVersion =
      json::Value::parse(R"({"generator": "x"})", &Err);
  ASSERT_TRUE(MissingVersion.has_value());
  EXPECT_FALSE(validateReport(*MissingVersion, &Err));
}

TEST(ConfigFingerprintTest, DistinguishesConfigs) {
  EngineConfig A, B;
  B.ClassCacheEnabled = true;
  EXPECT_NE(configFingerprint(A), configFingerprint(B));
  EXPECT_EQ(configFingerprint(A), configFingerprint(EngineConfig()));
}

//===----------------------------------------------------------------------===//
// diffReports
//===----------------------------------------------------------------------===//

static json::Value reportWithComparison(const Comparison &C) {
  BenchReport Report("difftest", EngineConfig());
  Workload W{"w1", "s", "", true};
  Report.addComparison(W, C, /*IncludeRuns=*/true);
  return Report.toJson();
}

class DiffReportsTest : public ::testing::Test {
protected:
  static void SetUpTestSuite() {
    Base = new Comparison(compareConfigs(TieringProgram, EngineConfig(), 10));
    ASSERT_TRUE(Base->valid());
  }
  static void TearDownTestSuite() {
    delete Base;
    Base = nullptr;
  }
  static Comparison *Base;
};

Comparison *DiffReportsTest::Base = nullptr;

TEST_F(DiffReportsTest, SelfCompareIsClean) {
  json::Value R = reportWithComparison(*Base);
  DiffResult D = diffReports(R, R, 0.1);
  ASSERT_TRUE(D.Comparable) << D.Error;
  EXPECT_GT(D.MetricsCompared, 0u);
  EXPECT_FALSE(D.hasRegressions());
  EXPECT_TRUE(D.Changes.empty());
}

TEST_F(DiffReportsTest, FlagsSpeedupDrop) {
  json::Value Old = reportWithComparison(*Base);
  Comparison Worse = *Base;
  Worse.SpeedupWhole = *Worse.SpeedupWhole - 5.0;
  json::Value New = reportWithComparison(Worse);
  DiffResult D = diffReports(Old, New, 0.5);
  ASSERT_TRUE(D.Comparable) << D.Error;
  EXPECT_TRUE(D.hasRegressions());
  bool Found = false;
  for (const DiffEntry &E : D.Changes)
    if (E.Metric == "comparison.speedup_whole_pct" && E.Regression)
      Found = true;
  EXPECT_TRUE(Found);
}

TEST_F(DiffReportsTest, ImprovementIsNotARegression) {
  json::Value Old = reportWithComparison(*Base);
  Comparison Better = *Base;
  Better.SpeedupWhole = *Better.SpeedupWhole + 5.0;
  json::Value New = reportWithComparison(Better);
  DiffResult D = diffReports(Old, New, 0.5);
  ASSERT_TRUE(D.Comparable) << D.Error;
  EXPECT_FALSE(D.hasRegressions());
  EXPECT_FALSE(D.Changes.empty()); // Still reported as a movement.
}

TEST_F(DiffReportsTest, LosingMeasurabilityIsARegression) {
  json::Value Old = reportWithComparison(*Base);
  Comparison Unmeasurable = *Base;
  Unmeasurable.SpeedupWhole.reset();
  json::Value New = reportWithComparison(Unmeasurable);
  DiffResult D = diffReports(Old, New, 0.5);
  ASSERT_TRUE(D.Comparable) << D.Error;
  EXPECT_TRUE(D.hasRegressions());
}

TEST_F(DiffReportsTest, RejectsFingerprintMismatch) {
  json::Value Old = reportWithComparison(*Base);
  BenchReport OtherCfg("difftest", [] {
    EngineConfig C;
    C.ClassCacheEnabled = true;
    return C;
  }());
  Workload W{"w1", "s", "", true};
  OtherCfg.addComparison(W, *Base);
  DiffResult D = diffReports(Old, OtherCfg.toJson(), 0.5);
  EXPECT_FALSE(D.Comparable);
}

TEST_F(DiffReportsTest, MissingWorkloadIsANote) {
  json::Value Old = reportWithComparison(*Base);
  BenchReport Empty("difftest", EngineConfig());
  DiffResult D = diffReports(Old, Empty.toJson(), 0.5);
  ASSERT_TRUE(D.Comparable) << D.Error;
  EXPECT_FALSE(D.Notes.empty());
}

//===----------------------------------------------------------------------===//
// HarnessOptions
//===----------------------------------------------------------------------===//

static bool parseArgs(HarnessOptions &Opt,
                      std::initializer_list<const char *> Args) {
  std::vector<char *> Argv;
  static char Prog[] = "bench_test";
  Argv.push_back(Prog);
  std::vector<std::string> Storage(Args.begin(), Args.end());
  for (std::string &S : Storage)
    Argv.push_back(S.data());
  return Opt.parse(static_cast<int>(Argv.size()), Argv.data());
}

TEST(HarnessOptionsTest, ParsesSharedFlags) {
  HarnessOptions Opt;
  EXPECT_TRUE(parseArgs(Opt, {"--jobs=4", "--json=/tmp/x.json",
                              "--filter=sunspider"}));
  EXPECT_EQ(Opt.Jobs, 4u);
  EXPECT_EQ(Opt.JsonPath, "/tmp/x.json");
  EXPECT_EQ(Opt.Filter, "sunspider");
  EXPECT_EQ(Opt.effectiveJobs(), 4u);
}

TEST(HarnessOptionsTest, RejectsUnknownFlag) {
  HarnessOptions Opt;
  EXPECT_FALSE(parseArgs(Opt, {"--bogus"}));
}

TEST(HarnessOptionsTest, RejectsBadJobs) {
  HarnessOptions Opt;
  EXPECT_FALSE(parseArgs(Opt, {"--jobs=banana"}));
}

// The fig8 bugfix generalized: an invalid filter must fail before any
// benchmark work happens, not after a full sweep.
TEST(HarnessOptionsTest, RejectsUnknownFilterUpFront) {
  HarnessOptions Opt;
  EXPECT_FALSE(parseArgs(Opt, {"--filter=definitely-not-a-workload"}));
}

TEST(HarnessOptionsTest, AcceptsWorkloadNameAsFilter) {
  size_t Count = 0;
  const Workload &W = allWorkloads(&Count)[0];
  ASSERT_GE(Count, 1u);
  HarnessOptions Opt;
  std::string Flag = std::string("--filter=") + W.Name;
  EXPECT_TRUE(parseArgs(Opt, {Flag.c_str()}));
  EXPECT_EQ(Opt.Filter, W.Name);
}

TEST(HarnessOptionsTest, ZeroJobsResolvesToHardware) {
  HarnessOptions Opt;
  EXPECT_TRUE(parseArgs(Opt, {"--jobs=0"}));
  EXPECT_GE(Opt.effectiveJobs(), 1u);
}

} // namespace
