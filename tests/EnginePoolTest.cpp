//===- tests/EnginePoolTest.cpp - Service-mode engine pool ----------------===//
///
/// The EnginePool contract (DESIGN.md 4.9): tenant-bound engines, bounded
/// deterministic admission, graceful degradation, budget governance,
/// quarantine-and-recovery, and — the property everything else serves —
/// per-tenant isolation with byte-identical results regardless of the
/// worker count. The chaos soak at the bottom is the in-tree version of
/// the CI drill: ≥200 requests, 4 tenants, faults enabled, every failure
/// retried or contained, and a faults-off budgets-off control producing
/// byte-identical outputs.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "core/EnginePool.h"
#include "support/FaultInjector.h"
#include "vm/InvariantAuditor.h"

#include <string>
#include <vector>

using namespace ccjs;

namespace {

/// A deterministic per-tenant program: output depends on the tenant
/// parameter, so any cross-tenant engine mixup changes bytes.
std::string tenantProgram(unsigned T, unsigned R) {
  return "function k(n) {\n"
         "  var a = 0; var i;\n"
         "  for (i = 0; i < n; i++) { a = (a + i * " +
         std::to_string(3 + T) +
         ") % 99991; }\n"
         "  return a;\n"
         "}\n"
         "print(\"t" +
         std::to_string(T) + " r" + std::to_string(R) + " \" + k(" +
         std::to_string(300 + T * 13) + "));\n";
}

const char *HaltingSource = "print(1);\nvar broken = {};\nbroken.boom();\n";

PoolConfig basePool(unsigned Engines = 4) {
  PoolConfig PC;
  PC.Engines = Engines;
  PC.Base = test::hotConfig(true);
  return PC;
}

std::vector<ServiceRequest> tenantBatch(unsigned Tenants, unsigned Requests) {
  std::vector<ServiceRequest> Reqs(Requests);
  for (unsigned I = 0; I < Requests; ++I) {
    unsigned T = I % Tenants;
    Reqs[I].Tenant = "t" + std::to_string(T);
    Reqs[I].Source = tenantProgram(T, I);
  }
  return Reqs;
}

//===----------------------------------------------------------------------===//
// Admission and backpressure
//===----------------------------------------------------------------------===//

TEST(EnginePoolTest, AdmitsAndServesMultipleTenants) {
  EnginePool Pool(basePool());
  std::vector<ServiceResult> Rs = Pool.serve(tenantBatch(4, 12));
  ASSERT_EQ(Rs.size(), 12u);
  for (size_t I = 0; I < Rs.size(); ++I) {
    EXPECT_EQ(Rs[I].Status, RequestStatus::Ok) << "r" << I;
    // Outputs carry the tenant tag of the request, not of a neighbour.
    EXPECT_EQ(Rs[I].Output.rfind("t" + std::to_string(I % 4) + " ", 0), 0u)
        << "r" << I << " output: " << Rs[I].Output;
  }
  EXPECT_EQ(Pool.enginesWarmed(), 4u);
}

TEST(EnginePoolTest, ShedsDeterministicallyOnOverload) {
  PoolConfig PC = basePool();
  PC.QueueCapacity = 6;
  PC.DegradeThreshold = 6;
  EnginePool Pool(PC);
  std::vector<ServiceResult> Rs = Pool.serve(tenantBatch(4, 10));
  // Arrival order admission: the first 6 get in, the rest shed.
  for (size_t I = 0; I < 6; ++I)
    EXPECT_EQ(Rs[I].Status, RequestStatus::Ok) << "r" << I;
  for (size_t I = 6; I < 10; ++I)
    EXPECT_EQ(Rs[I].Status, RequestStatus::ShedQueueFull) << "r" << I;
}

TEST(EnginePoolTest, PerTenantCapSheds) {
  PoolConfig PC = basePool();
  PC.MaxQueuedPerTenant = 2;
  EnginePool Pool(PC);
  // One tenant floods; a second tenant's requests must still be admitted.
  std::vector<ServiceRequest> Reqs(6);
  for (unsigned I = 0; I < 5; ++I) {
    Reqs[I].Tenant = "hog";
    Reqs[I].Source = tenantProgram(0, I);
  }
  Reqs[5].Tenant = "quiet";
  Reqs[5].Source = tenantProgram(1, 5);
  std::vector<ServiceResult> Rs = Pool.serve(Reqs);
  EXPECT_EQ(Rs[0].Status, RequestStatus::Ok);
  EXPECT_EQ(Rs[1].Status, RequestStatus::Ok);
  for (size_t I = 2; I < 5; ++I)
    EXPECT_EQ(Rs[I].Status, RequestStatus::ShedTenantCap) << "r" << I;
  EXPECT_EQ(Rs[5].Status, RequestStatus::Ok);
}

TEST(EnginePoolTest, NewTenantShedsWhenAllSlotsBound) {
  EnginePool Pool(basePool(/*Engines=*/2));
  std::vector<ServiceRequest> Reqs(3);
  for (unsigned I = 0; I < 3; ++I) {
    Reqs[I].Tenant = "t" + std::to_string(I);
    Reqs[I].Source = tenantProgram(I, I);
  }
  std::vector<ServiceResult> Rs = Pool.serve(Reqs);
  EXPECT_EQ(Rs[0].Status, RequestStatus::Ok);
  EXPECT_EQ(Rs[1].Status, RequestStatus::Ok);
  EXPECT_EQ(Rs[2].Status, RequestStatus::ShedNoEngine);
}

//===----------------------------------------------------------------------===//
// Graceful degradation
//===----------------------------------------------------------------------===//

TEST(EnginePoolTest, DegradesInsteadOfSheddingAboveThreshold) {
  PoolConfig PC = basePool(1);
  PC.QueueCapacity = 8;
  PC.DegradeThreshold = 4;
  EnginePool Pool(PC);
  std::vector<ServiceRequest> Reqs(8);
  for (unsigned I = 0; I < 8; ++I) {
    Reqs[I].Tenant = "t0";
    Reqs[I].Source = tenantProgram(0, I);
  }
  std::vector<ServiceResult> Rs = Pool.serve(Reqs);
  std::string Reference;
  for (size_t I = 0; I < 8; ++I) {
    EXPECT_EQ(Rs[I].Status, RequestStatus::Ok) << "r" << I;
    EXPECT_EQ(Rs[I].Degraded, I >= 4) << "r" << I;
  }
  // Tier transparency: the baseline-pinned requests compute the same value
  // the optimized ones do for the same program (only the request tag in
  // the output differs).
  EXPECT_EQ(Rs[0].Output.substr(Rs[0].Output.rfind(' ')),
            Rs[4].Output.substr(Rs[4].Output.rfind(' ')));
}

TEST(EnginePoolTest, TierPinKeepsEngineInBaseline) {
  // Directly: a pinned engine never runs optimized code; hotness still
  // accumulates so the pin is purely host-side throttling. The program
  // calls its kernel repeatedly so it would tier up when unpinned.
  Engine E(test::hotConfig(true));
  E.pinBaselineTier(true);
  std::string Src = "function k(n) {\n"
                    "  var a = 0; var i;\n"
                    "  for (i = 0; i < n; i++) { a = (a + i * 3) % 99991; }\n"
                    "  return a;\n"
                    "}\n"
                    "var j; for (j = 0; j < 8; j++) print(k(120));\n";
  ASSERT_TRUE(E.load(Src) && E.runTopLevel()) << E.lastError();
  EXPECT_EQ(E.stats().OptCompiles, 0u);
  std::string PinnedOut = E.output();

  E.pinBaselineTier(false);
  ASSERT_TRUE(E.load(Src) && E.runTopLevel()) << E.lastError();
  EXPECT_GT(E.stats().OptCompiles, 0u);
  EXPECT_EQ(E.output(), PinnedOut) << "tier transparency violated";
}

//===----------------------------------------------------------------------===//
// Budgets through the pool
//===----------------------------------------------------------------------===//

TEST(EnginePoolTest, PerRequestBudgetOverridesPoolDefault) {
  PoolConfig PC = basePool(1);
  PC.Base.Budget.MaxInstructions = ~0ull; // Pool default: effectively off.
  EnginePool Pool(PC);
  std::vector<ServiceRequest> Reqs(3);
  for (unsigned I = 0; I < 3; ++I) {
    Reqs[I].Tenant = "t0";
    Reqs[I].Source = tenantProgram(0, I);
  }
  Reqs[1].Budget.MaxInstructions = 500; // Tight override on the middle one.
  std::vector<ServiceResult> Rs = Pool.serve(Reqs);
  EXPECT_EQ(Rs[0].Status, RequestStatus::Ok);
  EXPECT_EQ(Rs[1].Status, RequestStatus::BudgetExceeded);
  EXPECT_EQ(Rs[1].BudgetTripped, BudgetKind::Instructions);
  // The engine survives the trip and serves the next request normally.
  EXPECT_EQ(Rs[2].Status, RequestStatus::Ok);
  EXPECT_EQ(Rs[2].Output.rfind("t0 r2 ", 0), 0u) << Rs[2].Output;
}

//===----------------------------------------------------------------------===//
// Quarantine and recovery
//===----------------------------------------------------------------------===//

TEST(EnginePoolTest, FaultAttributedHaltQuarantinesAndRetries) {
  PoolConfig PC = basePool(1);
  PC.Chaos = true;
  PC.ChaosSeed = 7;
  // Fire every fault point on every occurrence so the halting request is
  // guaranteed to have trips attributed to it.
  for (unsigned P = 0; P < NumFaultPoints; ++P)
    PC.Base.Faults.Schedule[P] = 1;
  PC.MaxRetries = 2;
  EnginePool Pool(PC);
  std::vector<ServiceRequest> Reqs(2);
  Reqs[0].Tenant = "t0";
  Reqs[0].Source = HaltingSource;
  Reqs[1].Tenant = "t0";
  Reqs[1].Source = tenantProgram(0, 1);
  std::vector<ServiceResult> Rs = Pool.serve(Reqs);

  // The halt is a genuine program error, so retries exhaust the cap; each
  // attempt quarantines its engine and the next runs on a fresh one.
  EXPECT_EQ(Rs[0].Status, RequestStatus::Error);
  EXPECT_EQ(Rs[0].Attempts, 1u + PC.MaxRetries);
  EXPECT_TRUE(Rs[0].Quarantined);
  EXPECT_EQ(Rs[0].BackoffSteps, 1u + 2u); // Recorded 1+2 backoff.
  ASSERT_EQ(Pool.quarantineLog().size(), 1u + PC.MaxRetries);
  for (const QuarantineRecord &Q : Pool.quarantineLog()) {
    EXPECT_EQ(Q.Reason, "fault-attributed-halt");
    EXPECT_FALSE(Q.TripLog.empty()) << "trip log not captured for replay";
  }
  // Distinct warm generations: every retry ran on a replacement engine.
  EXPECT_EQ(Pool.enginesWarmed(), 1u + (1u + PC.MaxRetries));

  // The tenant's follow-up request is served by the recovered slot, and
  // its partial output shows no residue of the failing request.
  EXPECT_EQ(Rs[1].Status, RequestStatus::Ok);
  EXPECT_EQ(Rs[1].Output.rfind("t0 r1 ", 0), 0u) << Rs[1].Output;
}

TEST(EnginePoolTest, CleanErrorWithoutFaultsDoesNotQuarantine) {
  EnginePool Pool(basePool(1)); // No chaos: a halt is just a halt.
  std::vector<ServiceRequest> Reqs(2);
  Reqs[0].Tenant = "t0";
  Reqs[0].Source = HaltingSource;
  Reqs[1].Tenant = "t0";
  Reqs[1].Source = tenantProgram(0, 1);
  std::vector<ServiceResult> Rs = Pool.serve(Reqs);
  EXPECT_EQ(Rs[0].Status, RequestStatus::Error);
  EXPECT_EQ(Rs[0].Attempts, 1u);
  EXPECT_FALSE(Rs[0].Quarantined);
  EXPECT_TRUE(Pool.quarantineLog().empty());
  EXPECT_EQ(Rs[1].Status, RequestStatus::Ok);
  EXPECT_EQ(Pool.enginesWarmed(), 1u);
}

TEST(EnginePoolTest, ManualQuarantineReplacesEngine) {
  PoolConfig PC = basePool(2);
  EnginePool Pool(PC);
  std::vector<ServiceResult> Rs = Pool.serve(tenantBatch(2, 4));
  for (const ServiceResult &R : Rs)
    ASSERT_EQ(R.Status, RequestStatus::Ok);
  Engine *Before = Pool.tenantEngine("t0");
  ASSERT_NE(Before, nullptr);
  Pool.quarantineTenantEngine("t0", "drill");
  Engine *After = Pool.tenantEngine("t0");
  ASSERT_NE(After, nullptr);
  EXPECT_NE(Before, After) << "engine not replaced";
  ASSERT_EQ(Pool.quarantineLog().size(), 1u);
  EXPECT_EQ(Pool.quarantineLog()[0].Reason, "drill");

  // The fresh engine serves the tenant's next batch.
  std::vector<ServiceResult> Rs2 = Pool.serve(tenantBatch(2, 4));
  for (const ServiceResult &R : Rs2)
    EXPECT_EQ(R.Status, RequestStatus::Ok);
}

//===----------------------------------------------------------------------===//
// Determinism and the chaos soak
//===----------------------------------------------------------------------===//

/// One soak's worth of observable bytes, for cross-run comparison.
std::string soakImage(const std::vector<ServiceResult> &Rs) {
  std::string S;
  for (const ServiceResult &R : Rs) {
    S += requestStatusName(R.Status);
    S += '|';
    S += R.Output;
    S += '|';
    S += R.Error;
    S += '\n';
  }
  return S;
}

std::vector<ServiceRequest> soakBatch(unsigned Requests) {
  // 4 tenants, mixed shapes, every 23rd request a genuine runtime error
  // (the quarantine/retry fodder under chaos).
  std::vector<ServiceRequest> Reqs(Requests);
  for (unsigned I = 0; I < Requests; ++I) {
    unsigned T = I % 4;
    Reqs[I].Tenant = "t" + std::to_string(T);
    Reqs[I].Source =
        I % 23 == 22 ? HaltingSource : tenantProgram(T, I);
  }
  return Reqs;
}

TEST(EnginePoolTest, ServeIsByteIdenticalAcrossJobsCounts) {
  std::vector<ServiceRequest> Reqs = soakBatch(60);
  PoolConfig PC = basePool();
  PC.Chaos = true;
  PC.ChaosSeed = 11;
  PC.Base.AuditInvariants = true;
  EnginePool P1(PC), P4(PC);
  std::string I1 = soakImage(P1.serve(Reqs, /*Jobs=*/1));
  std::string I4 = soakImage(P4.serve(Reqs, /*Jobs=*/4));
  EXPECT_EQ(I1, I4) << "serve() must not depend on worker interleaving";
  EXPECT_EQ(P1.quarantineLog().size(), P4.quarantineLog().size());
}

TEST(EnginePoolTest, ChaosSoakTwoHundredRequestsFourTenants) {
  const unsigned N = 200;
  std::vector<ServiceRequest> Reqs = soakBatch(N);

  PoolConfig PC = basePool();
  PC.QueueCapacity = N; // Soak admits everything: shed paths have their
  PC.DegradeThreshold = N; // own tests; here every request must complete.
  PC.MaxQueuedPerTenant = N;
  PC.Chaos = true;
  PC.ChaosSeed = 7;
  PC.Base.AuditInvariants = true;
  PC.MaxRetries = 2;
  EnginePool Pool(PC);
  std::vector<ServiceResult> Rs = Pool.serve(Reqs, /*Jobs=*/4);

  // Control: the same programs on fresh standalone engines, faults and
  // budgets off. Chaos transparency + tenant isolation = byte identity
  // for every completed request (errors included: the halt point and the
  // output prefix are properties of the program, not of the pool).
  for (size_t I = 0; I < Rs.size(); ++I) {
    ASSERT_TRUE(Rs[I].Status == RequestStatus::Ok ||
                Rs[I].Status == RequestStatus::Error)
        << "r" << I << ": " << requestStatusName(Rs[I].Status);
    Engine Control(test::hotConfig(true));
    bool ControlOk = Control.load(Reqs[I].Source) && Control.runTopLevel();
    EXPECT_EQ(Rs[I].Status == RequestStatus::Ok, ControlOk) << "r" << I;
    EXPECT_EQ(Rs[I].Output, Control.output())
        << "r" << I << ": pooled output diverged from the standalone "
        << "control — isolation or transparency violation";
  }

  // Every genuine error is one of the injected halting programs, and each
  // fault-attributed failure was retried to the cap or contained.
  for (size_t I = 0; I < Rs.size(); ++I) {
    if (Rs[I].Status != RequestStatus::Error)
      continue;
    EXPECT_EQ(I % 23, 22u) << "unexpected error at r" << I;
    if (Rs[I].FaultTrips > 0)
      EXPECT_EQ(Rs[I].Attempts, 1u + PC.MaxRetries) << "r" << I;
  }

  // No invariant failure escaped quarantine: every engine still in
  // rotation is clean (tripped engines were replaced on the spot).
  for (unsigned T = 0; T < 4; ++T) {
    Engine *E = Pool.tenantEngine("t" + std::to_string(T));
    ASSERT_NE(E, nullptr);
    ASSERT_NE(E->auditor(), nullptr);
    EXPECT_EQ(E->auditor()->failureCount(), 0u)
        << "tenant t" << T << ": audit failure escaped quarantine";
  }
}

//===----------------------------------------------------------------------===//
// Warm start and slot recycling (profile snapshots)
//===----------------------------------------------------------------------===//

/// Reads a pool counter by name (0 when the counter never fired).
uint64_t poolCounter(const EnginePool &Pool, std::string_view Name) {
  for (const auto &C : Pool.metrics().counters())
    if (C.first == Name)
      return C.second;
  return 0;
}

TEST(EnginePoolTest, RecyclesIdleSlotAcrossBatchesAndParksSnapshot) {
  // Two engines, both bound in batch 1. In batch 2 a third tenant arrives
  // alone: the least-recently-served slot is recycled (not shed — shed is
  // only for slots busy in the same batch), and the victim's warm profile
  // is parked for its return.
  EnginePool Pool(basePool(/*Engines=*/2));
  std::vector<ServiceRequest> B1(2);
  for (unsigned I = 0; I < 2; ++I) {
    B1[I].Tenant = "t" + std::to_string(I);
    B1[I].Source = tenantProgram(I, I);
  }
  for (const ServiceResult &R : Pool.serve(B1))
    ASSERT_EQ(R.Status, RequestStatus::Ok);

  std::vector<ServiceRequest> B2(1);
  B2[0].Tenant = "t2";
  B2[0].Source = tenantProgram(2, 2);
  std::vector<ServiceResult> Rs = Pool.serve(B2);
  EXPECT_EQ(Rs[0].Status, RequestStatus::Ok);
  EXPECT_EQ(Rs[0].Output.rfind("t2 r2 ", 0), 0u) << Rs[0].Output;
  EXPECT_EQ(poolCounter(Pool, "host.pool.recycles"), 1u);
  // t0 was served first, so its slot is the least-recently-served victim.
  EXPECT_TRUE(Pool.hasParkedSnapshot("t0"));
  EXPECT_FALSE(Pool.hasParkedSnapshot("t1"));

  // No residue: the recycled slot serves the new tenant's follow-up with
  // output identical to a standalone engine's.
  Engine Control(test::hotConfig(true));
  ASSERT_TRUE(Control.load(B2[0].Source) && Control.runTopLevel());
  EXPECT_EQ(Rs[0].Output, Control.output());
}

TEST(EnginePoolTest, EvictedTenantResumesWarmFromParkedSnapshot) {
  EnginePool Pool(basePool(/*Engines=*/1));
  auto ServeOne = [&](unsigned T, unsigned R) {
    std::vector<ServiceRequest> Reqs(1);
    Reqs[0].Tenant = "t" + std::to_string(T);
    Reqs[0].Source = tenantProgram(T, R);
    std::vector<ServiceResult> Rs = Pool.serve(Reqs);
    EXPECT_EQ(Rs[0].Status, RequestStatus::Ok) << "t" << T << " r" << R;
    return Rs[0].Output;
  };
  std::string First = ServeOne(0, 0); // t0 warms the only slot.
  ServeOne(1, 1);                     // t1 evicts t0; t0's profile parks.
  ASSERT_TRUE(Pool.hasParkedSnapshot("t0"));
  std::string Again = ServeOne(0, 0); // t0 returns, warm-started.
  EXPECT_EQ(Again, First) << "warm-started rerun must be byte-identical";
  EXPECT_EQ(poolCounter(Pool, "host.pool.recycles"), 2u);
  EXPECT_GE(poolCounter(Pool, "host.pool.warm_starts"), 1u);
  EXPECT_EQ(poolCounter(Pool, "host.pool.warm_start_rejected"), 0u);
}

TEST(EnginePoolTest, PoolWideWarmStartSnapshotIsOutputTransparent) {
  // Train a snapshot on the tenant-0 program, hand it to the pool, and
  // serve a mixed batch: every engine warm-starts from it, counters say
  // so, and the outputs are byte-identical to an unwarmed pool's.
  PoolConfig PC = basePool();
  EngineConfig TC = PC.Base;
  TC.ProfilePersistence = true;
  Engine Trainer(TC);
  std::string Train = tenantProgram(0, 0);
  ASSERT_TRUE(Trainer.load(Train) && Trainer.runTopLevel())
      << Trainer.lastError();
  PC.WarmStartSnapshot = std::make_shared<const std::vector<uint8_t>>(
      Trainer.snapshotProfile());

  std::vector<ServiceRequest> Reqs = tenantBatch(4, 12);
  EnginePool Warm(PC), Cold(basePool());
  std::string WarmImage = soakImage(Warm.serve(Reqs));
  std::string ColdImage = soakImage(Cold.serve(Reqs));
  EXPECT_EQ(WarmImage, ColdImage)
      << "warm start must be output-transparent";
  EXPECT_EQ(poolCounter(Warm, "host.pool.warm_starts"), 4u);
  EXPECT_EQ(poolCounter(Warm, "host.pool.warm_start_rejected"), 0u);
  EXPECT_EQ(poolCounter(Cold, "host.pool.warm_starts"), 0u);
}

TEST(EnginePoolTest, IncompatibleWarmStartSnapshotIsRejectedNotFatal) {
  // A snapshot trained under different tiering thresholds fails the config
  // fingerprint; the pool must count the rejection and serve cold.
  EngineConfig TC = test::hotConfig(true);
  TC.HotInvocationThreshold += 5;
  TC.ProfilePersistence = true;
  Engine Trainer(TC);
  ASSERT_TRUE(Trainer.load(tenantProgram(0, 0)) && Trainer.runTopLevel());

  PoolConfig PC = basePool(/*Engines=*/2);
  PC.WarmStartSnapshot = std::make_shared<const std::vector<uint8_t>>(
      Trainer.snapshotProfile());
  EnginePool Pool(PC);
  std::vector<ServiceResult> Rs = Pool.serve(tenantBatch(2, 4));
  for (size_t I = 0; I < Rs.size(); ++I)
    EXPECT_EQ(Rs[I].Status, RequestStatus::Ok) << "r" << I;
  EXPECT_EQ(poolCounter(Pool, "host.pool.warm_starts"), 0u);
  EXPECT_EQ(poolCounter(Pool, "host.pool.warm_start_rejected"), 2u);
  // Cold fallback is the ordinary engine: outputs match a plain pool's.
  EnginePool Plain(basePool(/*Engines=*/2));
  EXPECT_EQ(soakImage(Rs), soakImage(Plain.serve(tenantBatch(2, 4))));
}

TEST(EnginePoolTest, RecyclingIsByteIdenticalAcrossJobsCounts) {
  // Multi-batch churn with more tenants than engines: recycling decisions
  // (victim choice, parked snapshots, warm resumes) must not depend on the
  // worker count.
  PoolConfig PC = basePool(/*Engines=*/2);
  EnginePool P1(PC), P4(PC);
  std::string I1, I4;
  for (unsigned Batch = 0; Batch < 6; ++Batch) {
    std::vector<ServiceRequest> Reqs(2);
    for (unsigned I = 0; I < 2; ++I) {
      unsigned T = (Batch * 2 + I) % 5; // 5 tenants over 2 slots.
      Reqs[I].Tenant = "t" + std::to_string(T);
      Reqs[I].Source = tenantProgram(T, Batch);
    }
    I1 += soakImage(P1.serve(Reqs, /*Jobs=*/1));
    I4 += soakImage(P4.serve(Reqs, /*Jobs=*/4));
  }
  EXPECT_EQ(I1, I4) << "recycling must not depend on worker interleaving";
  EXPECT_EQ(poolCounter(P1, "host.pool.recycles"),
            poolCounter(P4, "host.pool.recycles"));
  EXPECT_EQ(poolCounter(P1, "host.pool.warm_starts"),
            poolCounter(P4, "host.pool.warm_starts"));
}

} // namespace
