//===- tests/ChaosTest.cpp - Fault injection + invariant audit oracle -----===//
///
/// The chaos oracle for the speculation machinery (the paper's transparency
/// invariant as a continuously enforced property): for every differential
/// program and a sweep of fault-injection seeds, the observable output must
/// equal the interpreter-only reference, with zero invariant-audit failures
/// and no crash or livelock. Same seed ⇒ byte-identical trip log.
///
//===----------------------------------------------------------------------===//

#include "DiffPrograms.h"
#include "TestUtil.h"

#include "core/BenchHarness.h"
#include "support/FaultInjector.h"
#include "vm/InvariantAuditor.h"

#include <thread>

using namespace ccjs;

namespace {

using test::DiffProgram;
using test::Programs;

constexpr uint64_t NumSweepSeeds = 64;

EngineConfig chaosConfig(uint64_t Seed) {
  EngineConfig C = test::hotConfig(/*ClassCache=*/true);
  C.Faults.Enabled = true;
  C.Faults.Seed = Seed;
  C.AuditInvariants = true;
  return C;
}

struct ChaosRun {
  std::string Output;
  std::string Error;
  bool Ok = false;
  uint64_t AuditFailures = 0;
  std::vector<std::string> FailureMessages;
  uint64_t TotalTrips = 0;
  std::string TripLog;
};

ChaosRun runChaos(const char *Source, const EngineConfig &Config) {
  ChaosRun R;
  Engine E(Config);
  if (!E.load(Source) || !E.runTopLevel()) {
    R.Error = E.lastError();
    return R;
  }
  E.auditNow("final");
  R.Ok = true;
  R.Output = E.output();
  if (const InvariantAuditor *A = E.auditor()) {
    R.AuditFailures = A->failureCount();
    R.FailureMessages = A->failures();
  }
  if (const FaultInjector *FI = E.faultInjector()) {
    for (unsigned P = 0; P < NumFaultPoints; ++P)
      R.TotalTrips += FI->tripCount(static_cast<FaultPoint>(P));
    R.TripLog = FI->renderTripLog();
  }
  return R;
}

std::string interpreterReference(const char *Source) {
  EngineConfig Cold;
  Cold.HotInvocationThreshold = 1000000; // Never optimize.
  Cold.HotLoopThreshold = 1u << 30;
  return test::runProgram(Source, Cold);
}

class ChaosDifferentialTest : public ::testing::TestWithParam<DiffProgram> {};

/// Sweep jobs: engines are fully instance-owned, so seeds are
/// embarrassingly parallel.
unsigned sweepJobs() {
  unsigned HW = std::thread::hardware_concurrency();
  return HW ? std::min(HW, 8u) : 2u;
}

/// The tentpole oracle: 64-seed sweep per program, run across the
/// runIndexed thread pool (each seed owns its Engine and result slot).
TEST_P(ChaosDifferentialTest, OutputMatchesReferenceAcrossSeeds) {
  const DiffProgram &P = GetParam();
  const std::string Ref = interpreterReference(P.Source);
  ASSERT_NE(Ref, "<runtime error>");
  std::vector<ChaosRun> Runs(NumSweepSeeds);
  runIndexed(NumSweepSeeds, sweepJobs(),
             [&](size_t I) { Runs[I] = runChaos(P.Source, chaosConfig(I + 1)); });
  uint64_t TripsSeen = 0;
  for (uint64_t Seed = 1; Seed <= NumSweepSeeds; ++Seed) {
    const ChaosRun &R = Runs[Seed - 1];
    ASSERT_TRUE(R.Ok) << "seed " << Seed << " halted: " << R.Error;
    EXPECT_EQ(R.Output, Ref) << "seed " << Seed
                             << " changed observable behaviour; trip log:\n"
                             << R.TripLog;
    EXPECT_EQ(R.AuditFailures, 0u)
        << "seed " << Seed << " first failure: "
        << (R.FailureMessages.empty() ? "<none recorded>"
                                      : R.FailureMessages.front());
    TripsSeen += R.TotalTrips;
  }
  // The sweep must actually have injected faults, or the oracle is vacuous.
  EXPECT_GT(TripsSeen, 0u) << "no fault ever fired across the sweep";
}

/// The parallel sweep is only trustworthy if threading is invisible: every
/// seed's full observable record must be byte-identical to a serial run.
TEST(ChaosParallelSweepTest, ParallelSweepIdenticalToSerial) {
  const DiffProgram &P = Programs[4]; // mid_run_shape_break
  std::vector<ChaosRun> Serial(NumSweepSeeds);
  for (uint64_t Seed = 1; Seed <= NumSweepSeeds; ++Seed)
    Serial[Seed - 1] = runChaos(P.Source, chaosConfig(Seed));
  std::vector<ChaosRun> Parallel(NumSweepSeeds);
  runIndexed(NumSweepSeeds, sweepJobs(), [&](size_t I) {
    Parallel[I] = runChaos(P.Source, chaosConfig(I + 1));
  });
  for (size_t I = 0; I < NumSweepSeeds; ++I) {
    EXPECT_EQ(Serial[I].Ok, Parallel[I].Ok) << "seed " << I + 1;
    EXPECT_EQ(Serial[I].Output, Parallel[I].Output) << "seed " << I + 1;
    EXPECT_EQ(Serial[I].TripLog, Parallel[I].TripLog) << "seed " << I + 1;
    EXPECT_EQ(Serial[I].AuditFailures, Parallel[I].AuditFailures)
        << "seed " << I + 1;
    EXPECT_EQ(Serial[I].TotalTrips, Parallel[I].TotalTrips)
        << "seed " << I + 1;
  }
}

/// Replay: the same seed must produce a byte-identical trip log.
TEST_P(ChaosDifferentialTest, TripLogIsReplayable) {
  const DiffProgram &P = GetParam();
  ChaosRun A = runChaos(P.Source, chaosConfig(7));
  ChaosRun B = runChaos(P.Source, chaosConfig(7));
  ASSERT_TRUE(A.Ok && B.Ok);
  EXPECT_EQ(A.TripLog, B.TripLog) << "same seed diverged";
  EXPECT_EQ(A.Output, B.Output);
}

/// The auditor itself must not cry wolf: a fault-free audited run of every
/// program and config is failure-free.
TEST_P(ChaosDifferentialTest, AuditCleanWithoutFaults) {
  const DiffProgram &P = GetParam();
  for (bool ClassCache : {false, true}) {
    EngineConfig C = test::hotConfig(ClassCache);
    C.AuditInvariants = true;
    Engine E(C);
    ASSERT_TRUE(E.load(P.Source));
    ASSERT_TRUE(E.runTopLevel()) << E.lastError();
    E.auditNow("final");
    ASSERT_NE(E.auditor(), nullptr);
    EXPECT_GT(E.auditor()->audits(), 0u);
    EXPECT_EQ(E.auditor()->failureCount(), 0u)
        << "false positive: "
        << (E.auditor()->failures().empty()
                ? "<none recorded>"
                : E.auditor()->failures().front());
  }
}

INSTANTIATE_TEST_SUITE_P(Programs, ChaosDifferentialTest,
                         ::testing::ValuesIn(Programs),
                         [](const auto &Info) {
                           return std::string(Info.param.Name);
                         });

//===----------------------------------------------------------------------===//
// Per-point schedules
//===----------------------------------------------------------------------===//

/// Isolates one fault point at maximum rate (every occurrence fires) with
/// every other point disabled; output must still match.
class SingleFaultPointTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(SingleFaultPointTest, EveryOccurrenceFires) {
  FaultPoint Point = static_cast<FaultPoint>(GetParam());
  for (const DiffProgram &P :
       {Programs[2] /*object_fields*/, Programs[4] /*mid_run_shape_break*/}) {
    const std::string Ref = interpreterReference(P.Source);
    EngineConfig C = chaosConfig(1);
    for (unsigned I = 0; I < NumFaultPoints; ++I)
      C.Faults.Schedule[I] = -1;
    C.Faults.Schedule[GetParam()] = 1;
    ChaosRun R = runChaos(P.Source, C);
    ASSERT_TRUE(R.Ok) << FaultInjector::pointName(Point) << " halted "
                      << P.Name << ": " << R.Error;
    EXPECT_EQ(R.Output, Ref)
        << FaultInjector::pointName(Point) << " changed " << P.Name;
    EXPECT_EQ(R.AuditFailures, 0u)
        << (R.FailureMessages.empty() ? "<none>" : R.FailureMessages.front());
    EXPECT_GT(R.TotalTrips, 0u)
        << FaultInjector::pointName(Point) << " never fired on " << P.Name;
  }
}

INSTANTIATE_TEST_SUITE_P(Points, SingleFaultPointTest,
                         ::testing::Range(0u, NumFaultPoints),
                         [](const auto &Info) {
                           std::string Name = FaultInjector::pointName(
                               static_cast<FaultPoint>(Info.param));
                           for (char &C : Name)
                             if (C == '-')
                               C = '_';
                           return Name;
                         });

//===----------------------------------------------------------------------===//
// Deopt storms (satellite: feedback that never stops being stale)
//===----------------------------------------------------------------------===//

TEST(DeoptStormTest, PermanentlyStaleFeedbackHitsTheBoundAndFallsBack) {
  // Every guard the optimized code executes fails, so every tier-up deopts
  // immediately: the bound must engage, disable re-optimization, and the
  // program must finish (correctly) in the baseline tier.
  const char *Source = R"js(
function Pt(x) { this.x = x; }
var ps = [];
var i; for (i = 0; i < 30; i++) ps[i] = new Pt(i);
function run() { var s = 0; var i; for (i = 0; i < 30; i++) s += ps[i].x; return s; }
var j; for (j = 0; j < 40; j++) print(run());
)js";
  const std::string Ref = interpreterReference(Source);

  EngineConfig C = chaosConfig(1);
  C.MaxDeoptsPerFunction = 3;
  for (unsigned I = 0; I < NumFaultPoints; ++I)
    C.Faults.Schedule[I] = -1;
  C.Faults.Schedule[static_cast<unsigned>(FaultPoint::ForcedGuardFail)] = 1;

  Engine E(C);
  ASSERT_TRUE(E.load(Source));
  ASSERT_TRUE(E.runTopLevel()) << E.lastError();
  E.auditNow("final");
  EXPECT_EQ(E.output(), Ref);
  EXPECT_EQ(E.auditor()->failureCount(), 0u);

  // Tier counters, not just output: `run` must have hit the bound exactly,
  // been disabled, and dropped its optimized code for good.
  const VMState &VM = E.vm();
  bool SawStorm = false;
  uint32_t TotalDeopts = 0;
  for (const FunctionInfo &FI : VM.Funcs) {
    TotalDeopts += FI.DeoptCount;
    EXPECT_LE(FI.DeoptCount, C.MaxDeoptsPerFunction);
    if (FI.DeoptCount >= C.MaxDeoptsPerFunction) {
      SawStorm = true;
      EXPECT_TRUE(FI.OptDisabled);
      EXPECT_FALSE(FI.OptValid);
    }
    EXPECT_FALSE(FI.OptDisabled && FI.OptValid);
  }
  EXPECT_TRUE(SawStorm) << "no function ever reached MaxDeoptsPerFunction";
  // Each failure deopt burned one compile; once disabled, compiles stop.
  EXPECT_GE(VM.OptCompiles, TotalDeopts);
}

/// Collects every DeoptEvent through the EngineObserver API (the test-side
/// replacement for the old VMState::OnDeopt hook).
struct DeoptCapture : EngineObserver {
  std::vector<DeoptEvent> Events;
  void onDeopt(VMState &, const DeoptEvent &Ev) override {
    Events.push_back(Ev);
  }
};

TEST(DeoptStormTest, DeoptObserverCapturesTheStorm) {
  const char *Source = R"js(
function run() { var s = 0; var i; for (i = 0; i < 40; i++) s += i; return s; }
var j; for (j = 0; j < 20; j++) print(run());
)js";
  EngineConfig C = chaosConfig(1);
  C.MaxDeoptsPerFunction = 2;
  for (unsigned I = 0; I < NumFaultPoints; ++I)
    C.Faults.Schedule[I] = -1;
  C.Faults.Schedule[static_cast<unsigned>(FaultPoint::ForcedGuardFail)] = 1;

  Engine E(C);
  DeoptCapture Capture;
  E.addObserver(&Capture);
  ASSERT_TRUE(E.load(Source));
  ASSERT_TRUE(E.runTopLevel()) << E.lastError();

  ASSERT_FALSE(Capture.Events.empty()) << "observer never fired";
  uint32_t Failures = 0;
  for (const DeoptEvent &Ev : Capture.Events)
    if (Ev.Failure)
      ++Failures;
  EXPECT_EQ(Failures, C.MaxDeoptsPerFunction);
  // Prior counts are monotone within the storm.
  EXPECT_EQ(Capture.Events.front().PriorDeoptCount, 0u);
  // Forced guard failures carry a guard-check reason, never the planned or
  // invalidated kinds.
  for (const DeoptEvent &Ev : Capture.Events)
    if (Ev.Failure)
      EXPECT_NE(Ev.Reason, DeoptReason::CodeInvalidated);
}

TEST(DeoptStormTest, TracerCrossLinksTripsWithTraceEvents) {
  // A traced chaos run: every FaultInjector trip must surface as a
  // fault-trip trace event with the same (point, occurrence) identity, in
  // the same order — the trip log and the trace describe one history.
  const char *Source = R"js(
function Pt(x) { this.x = x; }
var ps = [];
var i; for (i = 0; i < 30; i++) ps[i] = new Pt(i);
function run() { var s = 0; var i; for (i = 0; i < 30; i++) s += ps[i].x; return s; }
var j; for (j = 0; j < 40; j++) print(run());
)js";
  EngineConfig C = chaosConfig(5);
  C.Trace.Enabled = true;

  Engine E(C);
  ASSERT_TRUE(E.load(Source));
  ASSERT_TRUE(E.runTopLevel()) << E.lastError();

  const FaultInjector *FI = E.faultInjector();
  const TraceRecorder *T = E.trace();
  ASSERT_NE(FI, nullptr);
  ASSERT_NE(T, nullptr);

  uint64_t Trips = 0;
  for (unsigned P = 0; P < NumFaultPoints; ++P)
    Trips += FI->tripCount(static_cast<FaultPoint>(P));
  ASSERT_GT(Trips, 0u) << "seed 5 never fired";
  EXPECT_EQ(T->total(TraceEventKind::FaultTrip), Trips);

  // Event-by-event identity against the replayable trip log.
  ASSERT_EQ(T->dropped(), 0u);
  std::vector<std::pair<uint8_t, uint64_t>> FromTrace;
  for (const TraceEvent &Ev : T->snapshot())
    if (Ev.Kind == TraceEventKind::FaultTrip)
      FromTrace.push_back(
          {Ev.A8, (static_cast<uint64_t>(Ev.B) << 32) | Ev.A});
  ASSERT_EQ(FromTrace.size(), FI->trips().size());
  for (size_t I = 0; I < FromTrace.size(); ++I) {
    EXPECT_EQ(FromTrace[I].first,
              static_cast<uint8_t>(FI->trips()[I].Point));
    EXPECT_EQ(FromTrace[I].second, FI->trips()[I].Occurrence);
  }

  // Deopt trace totals reconcile with the tier bookkeeping.
  uint64_t FailureDeopts = 0;
  for (const FunctionInfo &Fn : E.vm().Funcs)
    FailureDeopts += Fn.DeoptCount;
  uint64_t TracedFailures = 0;
  for (const TraceEvent &Ev : T->snapshot())
    if (Ev.Kind == TraceEventKind::Deopt && Ev.B8)
      ++TracedFailures;
  EXPECT_EQ(TracedFailures, FailureDeopts);
}

//===----------------------------------------------------------------------===//
// FaultInjector unit behaviour
//===----------------------------------------------------------------------===//

TEST(FaultInjectorTest, ScheduleOverridesAreExact) {
  FaultConfig Cfg;
  Cfg.Enabled = true;
  Cfg.Seed = 42;
  for (unsigned I = 0; I < NumFaultPoints; ++I)
    Cfg.Schedule[I] = -1;
  Cfg.Schedule[static_cast<unsigned>(FaultPoint::CcForcedEviction)] = 3;

  FaultInjector FI(Cfg);
  unsigned Fired = 0;
  for (unsigned I = 0; I < 30; ++I)
    Fired += FI.fire(FaultPoint::CcForcedEviction);
  EXPECT_EQ(Fired, 10u); // Every 3rd of 30.
  for (unsigned I = 0; I < 100; ++I)
    EXPECT_FALSE(FI.fire(FaultPoint::ForcedGuardFail)) << "disabled point fired";
}

TEST(FaultInjectorTest, SameSeedSameSchedule) {
  FaultConfig Cfg;
  Cfg.Enabled = true;
  Cfg.Seed = 1234;
  FaultInjector A(Cfg), B(Cfg);
  for (unsigned I = 0; I < 5000; ++I)
    for (unsigned P = 0; P < NumFaultPoints; ++P) {
      FaultPoint Point = static_cast<FaultPoint>(P);
      ASSERT_EQ(A.fire(Point), B.fire(Point)) << "divergence at occ " << I;
    }
  EXPECT_EQ(A.renderTripLog(), B.renderTripLog());
}

TEST(FaultInjectorTest, DifferentSeedsDifferentSchedules) {
  FaultConfig A, B;
  A.Enabled = B.Enabled = true;
  A.Seed = 1;
  B.Seed = 2;
  FaultInjector Fa(A), Fb(B);
  unsigned Divergences = 0;
  for (unsigned I = 0; I < 5000; ++I)
    for (unsigned P = 0; P < NumFaultPoints; ++P) {
      FaultPoint Point = static_cast<FaultPoint>(P);
      if (Fa.fire(Point) != Fb.fire(Point))
        ++Divergences;
    }
  EXPECT_GT(Divergences, 0u) << "seeds 1 and 2 injected identical faults";
}

TEST(FaultInjectorTest, PointNamesRoundTrip) {
  for (unsigned P = 0; P < NumFaultPoints; ++P) {
    FaultPoint Out;
    ASSERT_TRUE(FaultInjector::pointFromName(
        FaultInjector::pointName(static_cast<FaultPoint>(P)), Out));
    EXPECT_EQ(static_cast<unsigned>(Out), P);
  }
  FaultPoint Out;
  EXPECT_FALSE(FaultInjector::pointFromName("no-such-point", Out));
}

//===----------------------------------------------------------------------===//
// CCJS_ASSERT (satellite: release-mode assertions)
//===----------------------------------------------------------------------===//

TEST(CcjsAssertDeathTest, FiresWithMessage) {
  EXPECT_DEATH(CCJS_ASSERT(1 == 2, "chaos sanity"), "chaos sanity");
}

} // namespace
