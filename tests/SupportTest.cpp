//===- tests/SupportTest.cpp - SimMemory, interner, tables ----------------===//

#include "runtime/SimMemory.h"
#include "support/StringInterner.h"
#include "support/Table.h"

#include <gtest/gtest.h>

using namespace ccjs;

namespace {

TEST(SimMemoryTest, AllocationIsAligned) {
  SimMemory M;
  uint64_t A = M.allocate(10, 8);
  uint64_t B = M.allocate(1, 64);
  uint64_t C = M.allocate(8, 8);
  EXPECT_EQ(A % 8, 0u);
  EXPECT_EQ(B % 64, 0u);
  EXPECT_EQ(C % 8, 0u);
  EXPECT_GT(B, A);
  EXPECT_GT(C, B);
}

TEST(SimMemoryTest, ReadWriteRoundTrip) {
  SimMemory M;
  uint64_t A = M.allocate(64, 8);
  M.write64(A, 0xDEADBEEFCAFEBABEull);
  EXPECT_EQ(M.read64(A), 0xDEADBEEFCAFEBABEull);
  M.write8(A + 8, 0x42);
  EXPECT_EQ(M.read8(A + 8), 0x42);
  M.write16(A + 10, 0x1234);
  EXPECT_EQ(M.read16(A + 10), 0x1234);
}

TEST(SimMemoryTest, ZeroInitialized) {
  SimMemory M;
  uint64_t A = M.allocate(128, 64);
  for (int I = 0; I < 16; ++I)
    EXPECT_EQ(M.read64(A + I * 8), 0u);
}

TEST(SimMemoryTest, BaseAddressIsNonZero) {
  SimMemory M;
  EXPECT_EQ(M.allocate(8, 8), SimMemory::BaseAddr);
  EXPECT_GT(SimMemory::BaseAddr, 0u);
}

TEST(SimMemoryTest, ContainsTracksGrowth) {
  SimMemory M;
  EXPECT_FALSE(M.contains(SimMemory::BaseAddr));
  uint64_t A = M.allocate(16, 8);
  EXPECT_TRUE(M.contains(A));
  EXPECT_TRUE(M.contains(A + 15));
  EXPECT_FALSE(M.contains(A + 16));
}

TEST(SimMemoryTest, LargeGrowth) {
  SimMemory M(16);
  uint64_t A = M.allocate(1 << 20, 64); // Far beyond the initial reserve.
  M.write64(A + (1 << 20) - 8, 7);
  EXPECT_EQ(M.read64(A + (1 << 20) - 8), 7u);
}

TEST(StringInternerTest, EmptyStringIsIdZero) {
  StringInterner I;
  EXPECT_EQ(I.intern(""), 0u);
}

TEST(StringInternerTest, InterningIsIdempotent) {
  StringInterner I;
  InternedString A = I.intern("hello");
  InternedString B = I.intern("hello");
  InternedString C = I.intern("world");
  EXPECT_EQ(A, B);
  EXPECT_NE(A, C);
  EXPECT_EQ(I.text(A), "hello");
  EXPECT_EQ(I.text(C), "world");
}

TEST(StringInternerTest, ManyStringsKeepStableIds) {
  StringInterner I;
  std::vector<InternedString> Ids;
  for (int K = 0; K < 1000; ++K)
    Ids.push_back(I.intern("s" + std::to_string(K)));
  for (int K = 0; K < 1000; ++K) {
    EXPECT_EQ(I.text(Ids[K]), "s" + std::to_string(K));
    EXPECT_EQ(I.intern("s" + std::to_string(K)), Ids[K]);
  }
  EXPECT_EQ(I.size(), 1001u); // + the empty string.
}

TEST(TableTest, RendersAlignedColumns) {
  Table T({"name", "value"});
  T.addRow({"a", "1"});
  T.addRow({"longer-name", "22"});
  std::string Out = T.render();
  EXPECT_NE(Out.find("| name        | value |"), std::string::npos) << Out;
  EXPECT_NE(Out.find("| longer-name | 22    |"), std::string::npos) << Out;
}

TEST(TableTest, SeparatorAndShortRows) {
  Table T({"a", "b", "c"});
  T.addRow({"x"});
  T.addSeparator();
  T.addRow({"y", "z"});
  std::string Out = T.render();
  EXPECT_NE(Out.find("|---"), std::string::npos);
}

TEST(TableTest, Formatting) {
  EXPECT_EQ(Table::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(Table::fmt(7, 0), "7");
  EXPECT_EQ(Table::pct(0.0712), "7.1%");
  EXPECT_EQ(Table::pct(1.0, 0), "100%");
}

} // namespace
