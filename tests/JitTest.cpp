//===- tests/JitTest.cpp - Optimizing tier & deoptimization ---------------===//

#include "TestUtil.h"

#include "jit/Jit.h"

using namespace ccjs;
using ccjs::test::hotConfig;

namespace {

/// Runs \p Source under an aggressive-tiering engine and returns it.
std::unique_ptr<Engine> runHot(std::string_view Source,
                               bool ClassCache = false) {
  auto E = std::make_unique<Engine>(hotConfig(ClassCache));
  EXPECT_TRUE(E->load(Source)) << E->lastError();
  EXPECT_TRUE(E->runTopLevel()) << E->lastError();
  return E;
}

TEST(JitTest, HotFunctionGetsOptimized) {
  auto E = runHot("function f(n) { return n + 1; } "
                  "var i; var s = 0; for (i = 0; i < 100; i++) s = f(s); "
                  "print(s);");
  EXPECT_EQ(E->output(), "100\n");
  EXPECT_GT(E->stats().OptCompiles, 0u);
  // The hot function produced optimized-tier instructions.
  EXPECT_GT(E->stats().Instrs.optimizedTotal(), 0u);
}

TEST(JitTest, ColdCodeStaysBaseline) {
  auto E = runHot("function once(n) { return n * 2; } print(once(21));");
  EXPECT_EQ(E->output(), "42\n");
  EXPECT_EQ(E->stats().OptCompiles, 0u);
}

TEST(JitTest, OptimizedPropertyAccess) {
  auto E = runHot(
      "function P(x) { this.x = x; }\n"
      "var objs = [];\n"
      "var i; for (i = 0; i < 64; i++) objs[i] = new P(i);\n"
      "function sum() { var s = 0; var i; for (i = 0; i < 64; i++) "
      "s += objs[i].x; return s; }\n"
      "var r = 0; for (i = 0; i < 20; i++) r = sum();\n"
      "print(r);");
  EXPECT_EQ(E->output(), "2016\n");
  // Checks were executed in optimized code.
  EXPECT_GT(E->stats().Instrs.PerCategory[unsigned(InstrCategory::Checks)],
            0u);
}

TEST(JitTest, DeoptOnShapeChange) {
  // f is optimized for {a}-shaped objects, then sees a {b,a} object.
  auto E = runHot(
      "function f(o) { return o.a; }\n"
      "var i; var s = 0;\n"
      "for (i = 0; i < 50; i++) s += f({a: 1});\n"
      "var other = {b: 2, a: 10};\n"
      "s += f(other);\n"
      "print(s);");
  EXPECT_EQ(E->output(), "60\n");
  EXPECT_GT(E->stats().Deopts, 0u);
}

TEST(JitTest, DeoptOnSmiOverflow) {
  auto E = runHot(
      "function inc(n) { return n + n; }\n"
      "var x = 3; var i;\n"
      "for (i = 0; i < 40; i++) x = inc(3);\n"
      "print(inc(2000000000));"); // Overflows int32.
  EXPECT_EQ(E->output(), "4000000000\n");
  EXPECT_GT(E->stats().Deopts, 0u);
}

TEST(JitTest, ReoptimizationAfterDeoptUsesNewFeedback) {
  auto E = runHot(
      "function add(a, b) { return a + b; }\n"
      "var i; var s = 0;\n"
      "for (i = 0; i < 50; i++) s = add(s, 1);\n" // SMI feedback.
      "var d = 0.5;\n"
      "for (i = 0; i < 50; i++) d = add(d, 0.25);\n" // Double now.
      "print(s); print(d);");
  EXPECT_EQ(E->output(), "50\n13\n");
}

TEST(JitTest, RepeatedDeoptDisablesOptimization) {
  EngineConfig Cfg = hotConfig();
  Cfg.MaxDeoptsPerFunction = 2;
  Engine E(Cfg);
  // Alternating shapes defeat the monomorphic speculation repeatedly.
  ASSERT_TRUE(E.load(
      "function f(o) { return o.v; }\n"
      "var a = {v: 1}; var b = {w: 0, v: 2};\n"
      "var i; var s = 0;\n"
      "for (i = 0; i < 200; i++) s += f(i % 2 == 0 ? a : b);\n"
      "print(s);"));
  ASSERT_TRUE(E.runTopLevel());
  EXPECT_EQ(E.output(), "300\n");
  EXPECT_EQ(E.vm().Funcs[1].OptDisabled ||
                E.vm().Funcs[1].DeoptCount <= Cfg.MaxDeoptsPerFunction,
            true);
}

TEST(JitTest, UnboxedDoubleLoops) {
  auto E = runHot(
      "function kernel() { var x = 0.5; var i; "
      "for (i = 0; i < 100; i++) x = x * 1.01 + 0.1; return x; }\n"
      "var r; var i; for (i = 0; i < 10; i++) r = kernel();\n"
      "print(r > 18 && r < 19);");
  EXPECT_EQ(E->output(), "true\n");
}

TEST(JitTest, InlinedMathBuiltins) {
  auto E = runHot(
      "function hyp(a, b) { return Math.sqrt(a * a + b * b); }\n"
      "var i; var s = 0; for (i = 0; i < 60; i++) s = hyp(3, 4);\n"
      "print(s);");
  EXPECT_EQ(E->output(), "5\n");
}

//===----------------------------------------------------------------------===//
// Class Cache behaviour through the full engine
//===----------------------------------------------------------------------===//

TEST(JitTest, ClassCacheElidesChecks) {
  const char *Src =
      "function P(x) { this.x = x; }\n"
      "var objs = [];\n"
      "var i; for (i = 0; i < 64; i++) objs[i] = new P(i);\n"
      "function sum() { var s = 0; var i; for (i = 0; i < 64; i++) "
      "s += objs[i].x; return s; }\n"
      "function run() { var r = 0; var i; for (i = 0; i < 20; i++) "
      "r = sum(); return r; }\n"
      "run(); run(); run(); run();";
  auto Base = runHot(Src, /*ClassCache=*/false);
  auto Cc = runHot(Src, /*ClassCache=*/true);
  uint64_t BaseChecks =
      Base->stats().Instrs.PerCategory[unsigned(InstrCategory::Checks)];
  uint64_t CcChecks =
      Cc->stats().Instrs.PerCategory[unsigned(InstrCategory::Checks)];
  EXPECT_LT(CcChecks, BaseChecks)
      << "the mechanism must remove check instructions";
  EXPECT_GT(Cc->stats().CcAccesses, 0u);
}

TEST(JitTest, ClassCacheExceptionDeoptimizesDependents) {
  EngineConfig Cfg = hotConfig(/*ClassCache=*/true);
  Engine E(Cfg);
  ASSERT_TRUE(E.load(
      "function Box(v) { this.v = v; }\n"
      "function Pt(x) { this.x = x; }\n"
      "var boxes = [];\n"
      "var i; for (i = 0; i < 64; i++) boxes[i] = new Box(new Pt(i));\n"
      "function sum() { var s = 0; var i; for (i = 0; i < 64; i++) "
      "s += boxes[i].v.x; return s; }\n"
      "var r; for (i = 0; i < 20; i++) r = sum();\n"
      "print(r);\n"
      // Break the monomorphism of Box.v: store a non-Pt value.
      "boxes[0].v = {y: 1, x: 100};\n"
      "print(sum());"));
  ASSERT_TRUE(E.runTopLevel()) << E.lastError();
  EXPECT_EQ(E.output(), "2016\n2116\n");
  EXPECT_GE(E.stats().CcExceptions + E.vm().CCache.exceptions(), 0u);
}

TEST(JitTest, ClassCacheCorrectAfterInvalidation) {
  // The same program must produce identical output with and without the
  // mechanism even when speculation is broken mid-run.
  const char *Src =
      "function N(next) { this.next = next; this.val = 1; }\n"
      "var head = null;\n"
      "var i; for (i = 0; i < 40; i++) head = new N(head);\n"
      "function count() { var c = 0; var n = head; "
      "while (n !== null) { c += n.val; n = n.next; } return c; }\n"
      "var r; for (i = 0; i < 15; i++) r = count();\n"
      "print(r);\n"
      "head.val = 0.5;\n" // SMI slot becomes double.
      "print(count());";
  auto Base = runHot(Src, false);
  auto Cc = runHot(Src, true);
  EXPECT_EQ(Base->output(), Cc->output());
  EXPECT_EQ(Cc->output(), "40\n39.5\n");
}

TEST(JitTest, CompileStatisticsExposed) {
  EngineConfig Cfg = hotConfig(/*ClassCache=*/true);
  Engine E(Cfg);
  ASSERT_TRUE(E.load(
      "function P(a) { this.a = a; }\n"
      "var o = [];\n"
      "var i; for (i = 0; i < 32; i++) o[i] = new P(i);\n"
      "function f() { var s = 0; var i; for (i = 0; i < 32; i++) "
      "s += o[i].a; return s; }\n"
      "for (i = 0; i < 30; i++) f();"));
  ASSERT_TRUE(E.runTopLevel());
  const FunctionInfo &FI = E.vm().Funcs[2]; // f is the second function.
  ASSERT_NE(FI.Opt, nullptr);
  EXPECT_GT(FI.Opt->ChecksEmitted + FI.Opt->ChecksElidedClassic +
                FI.Opt->ChecksElidedClassCache,
            0u);
  EXPECT_GT(FI.Opt->ChecksElidedClassCache, 0u)
      << "monomorphic element loads must enable elision";
}

TEST(JitTest, HoistingMarksLoopStores) {
  EngineConfig Cfg = hotConfig(/*ClassCache=*/true);
  Engine E(Cfg);
  ASSERT_TRUE(E.load(
      "var dst = new Array(128);\n"
      "function fill() { var i; for (i = 0; i < 128; i++) dst[i] = i; }\n"
      "var i; for (i = 0; i < 30; i++) fill();\n"
      "print(dst[100]);"));
  ASSERT_TRUE(E.runTopLevel());
  EXPECT_EQ(E.output(), "100\n");
  const FunctionInfo &FI = E.vm().Funcs[1];
  ASSERT_NE(FI.Opt, nullptr);
  EXPECT_GT(FI.Opt->HoistedStores, 0u)
      << "the loop-invariant array local must hoist movClassIDArray";
  EXPECT_FALSE(FI.Opt->LoopPreloads.empty());
}

TEST(JitTest, NoHoistingAcrossCalls) {
  EngineConfig Cfg = hotConfig(/*ClassCache=*/true);
  Engine E(Cfg);
  ASSERT_TRUE(E.load(
      "var dst = new Array(64);\n"
      "function g(x) { return x; }\n"
      "function fill() { var i; for (i = 0; i < 64; i++) dst[i] = g(i); }\n"
      "var i; for (i = 0; i < 30; i++) fill();\n"
      "print(dst[10]);"));
  ASSERT_TRUE(E.runTopLevel());
  const FunctionInfo &FI = E.vm().Funcs[2];
  ASSERT_NE(FI.Opt, nullptr);
  EXPECT_EQ(FI.Opt->HoistedStores, 0u)
      << "calls in the loop body clobber the regArrayObjectClassId regs";
}

TEST(JitTest, AblationFlagsDisableElision) {
  EngineConfig Cfg = hotConfig(/*ClassCache=*/true);
  Cfg.ElideCheckMaps = false;
  Cfg.ElideCheckSmi = false;
  Cfg.ElideCheckNonSmi = false;
  Engine E(Cfg);
  ASSERT_TRUE(E.load(
      "function P(a) { this.a = a; }\n"
      "var o = [];\n"
      "var i; for (i = 0; i < 32; i++) o[i] = new P(i);\n"
      "function f() { var s = 0; var i; for (i = 0; i < 32; i++) "
      "s += o[i].a; return s; }\n"
      "for (i = 0; i < 30; i++) f();\n"
      "print(f());"));
  ASSERT_TRUE(E.runTopLevel());
  EXPECT_EQ(E.output(), "496\n");
  const FunctionInfo &FI = E.vm().Funcs[2];
  ASSERT_NE(FI.Opt, nullptr);
  EXPECT_EQ(FI.Opt->ChecksElidedClassCache, 0u);
}

} // namespace
