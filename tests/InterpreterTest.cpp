//===- tests/InterpreterTest.cpp - Baseline-tier language semantics -------===//

#include "TestUtil.h"

using namespace ccjs;
using ccjs::test::runProgram;

namespace {

// Keep programs below the tiering thresholds so this file exercises the
// baseline tier; JitTest covers the optimizing tier, and the differential
// tests cover both at once.

TEST(InterpTest, Arithmetic) {
  EXPECT_EQ(runProgram("print(1 + 2 * 3 - 4 / 2);"), "5\n");
  EXPECT_EQ(runProgram("print(7 % 3);"), "1\n");
  EXPECT_EQ(runProgram("print(0.1 + 0.2 > 0.3 - 0.0000001);"), "true\n");
  EXPECT_EQ(runProgram("print(10 / 4);"), "2.5\n");
  EXPECT_EQ(runProgram("print(-5);"), "-5\n");
  EXPECT_EQ(runProgram("print(1 / 0);"), "Infinity\n");
  EXPECT_EQ(runProgram("print(0 / 0);"), "NaN\n");
}

TEST(InterpTest, SmiOverflowPromotesToDouble) {
  EXPECT_EQ(runProgram("print(2147483647 + 1);"), "2147483648\n");
  EXPECT_EQ(runProgram("print(-2147483648 - 1);"), "-2147483649\n");
  EXPECT_EQ(runProgram("print(100000 * 100000);"), "10000000000\n");
}

TEST(InterpTest, BitwiseOps) {
  EXPECT_EQ(runProgram("print(12 & 10);"), "8\n");
  EXPECT_EQ(runProgram("print(12 | 10);"), "14\n");
  EXPECT_EQ(runProgram("print(12 ^ 10);"), "6\n");
  EXPECT_EQ(runProgram("print(~5);"), "-6\n");
  EXPECT_EQ(runProgram("print(1 << 10);"), "1024\n");
  EXPECT_EQ(runProgram("print(-8 >> 1);"), "-4\n");
  EXPECT_EQ(runProgram("print(-8 >>> 28);"), "15\n");
  EXPECT_EQ(runProgram("print(-1 >>> 0);"), "4294967295\n");
  EXPECT_EQ(runProgram("print(3.7 | 0);"), "3\n");
  EXPECT_EQ(runProgram("print(-3.7 | 0);"), "-3\n");
}

TEST(InterpTest, Comparisons) {
  EXPECT_EQ(runProgram("print(1 < 2);"), "true\n");
  EXPECT_EQ(runProgram("print(2 <= 2);"), "true\n");
  EXPECT_EQ(runProgram("print('abc' < 'abd');"), "true\n");
  EXPECT_EQ(runProgram("print('b' > 'a');"), "true\n");
  EXPECT_EQ(runProgram("print(1 == '1');"), "true\n");
  EXPECT_EQ(runProgram("print(1 === '1');"), "false\n");
  EXPECT_EQ(runProgram("print(null == undefined);"), "true\n");
  EXPECT_EQ(runProgram("print(null === undefined);"), "false\n");
  EXPECT_EQ(runProgram("var n = 0 / 0; print(n == n);"), "false\n")
      << "NaN compares unequal to itself";
}

TEST(InterpTest, StringOps) {
  EXPECT_EQ(runProgram("print('a' + 'b' + 'c');"), "abc\n");
  EXPECT_EQ(runProgram("print('n=' + 5);"), "n=5\n");
  EXPECT_EQ(runProgram("print(5 + 'x');"), "5x\n");
  EXPECT_EQ(runProgram("print('hello'.length);"), "5\n");
  EXPECT_EQ(runProgram("print('hello'.charCodeAt(1));"), "101\n");
  EXPECT_EQ(runProgram("print('hello'.charAt(0));"), "h\n");
  EXPECT_EQ(runProgram("print('hello'.substring(1, 3));"), "el\n");
  EXPECT_EQ(runProgram("print('hello'.indexOf('ll'));"), "2\n");
  EXPECT_EQ(runProgram("print('a,b,c'.split(',').length);"), "3\n");
  EXPECT_EQ(runProgram("print('aBc'.toUpperCase());"), "ABC\n");
  EXPECT_EQ(runProgram("print(String.fromCharCode(65, 66));"), "AB\n");
}

TEST(InterpTest, ControlFlow) {
  EXPECT_EQ(runProgram("var x = 3; if (x > 2) print('big'); else "
                       "print('small');"),
            "big\n");
  EXPECT_EQ(runProgram("var s = 0; var i; for (i = 1; i <= 10; i++) s += i; "
                       "print(s);"),
            "55\n");
  EXPECT_EQ(runProgram("var i = 0; while (i < 5) i++; print(i);"), "5\n");
  EXPECT_EQ(runProgram("var i = 9; do i++; while (false); print(i);"),
            "10\n");
  EXPECT_EQ(runProgram("var i; var s = 0; for (i = 0; i < 10; i++) { if (i "
                       "== 3) continue; if (i == 6) break; s += i; } "
                       "print(s);"),
            "12\n");
}

TEST(InterpTest, LogicalOperatorsReturnOperands) {
  EXPECT_EQ(runProgram("print(0 || 'fallback');"), "fallback\n");
  EXPECT_EQ(runProgram("print(1 && 2);"), "2\n");
  EXPECT_EQ(runProgram("print(null || undefined);"), "undefined\n");
  EXPECT_EQ(runProgram("var n = 0; function f() { n++; return true; } "
                       "var r = false && f(); print(n);"),
            "0\n");
}

TEST(InterpTest, ConditionalExpr) {
  EXPECT_EQ(runProgram("print(5 > 3 ? 'yes' : 'no');"), "yes\n");
}

TEST(InterpTest, Truthiness) {
  EXPECT_EQ(runProgram("print(!!0);"), "false\n");
  EXPECT_EQ(runProgram("print(!!0.0);"), "false\n");
  EXPECT_EQ(runProgram("print(!!'');"), "false\n");
  EXPECT_EQ(runProgram("print(!!'a');"), "true\n");
  EXPECT_EQ(runProgram("print(!!null);"), "false\n");
  EXPECT_EQ(runProgram("print(!!undefined);"), "false\n");
  EXPECT_EQ(runProgram("print(!!{});"), "true\n");
}

TEST(InterpTest, Typeof) {
  EXPECT_EQ(runProgram("print(typeof 1);"), "number\n");
  EXPECT_EQ(runProgram("print(typeof 1.5);"), "number\n");
  EXPECT_EQ(runProgram("print(typeof 'a');"), "string\n");
  EXPECT_EQ(runProgram("print(typeof true);"), "boolean\n");
  EXPECT_EQ(runProgram("print(typeof undefined);"), "undefined\n");
  EXPECT_EQ(runProgram("print(typeof {});"), "object\n");
  EXPECT_EQ(runProgram("print(typeof print);"), "function\n");
}

TEST(InterpTest, Objects) {
  EXPECT_EQ(runProgram("var o = {a: 1, b: 'two'}; print(o.a); print(o.b);"),
            "1\ntwo\n");
  EXPECT_EQ(runProgram("var o = {}; o.x = 3; o.y = o.x + 1; print(o.y);"),
            "4\n");
  EXPECT_EQ(runProgram("var o = {n: 1}; o.n += 5; print(o.n);"), "6\n");
  EXPECT_EQ(runProgram("var o = {n: 1}; o.n++; print(o.n++); print(o.n);"),
            "2\n3\n");
  EXPECT_EQ(runProgram("var o = {}; print(o.missing);"), "undefined\n");
}

TEST(InterpTest, NestedObjects) {
  EXPECT_EQ(runProgram("var o = {inner: {v: 7}}; print(o.inner.v);"), "7\n");
}

TEST(InterpTest, Constructors) {
  EXPECT_EQ(runProgram("function P(x, y) { this.x = x; this.y = y; } "
                       "var p = new P(3, 4); print(p.x * p.x + p.y * p.y);"),
            "25\n");
  EXPECT_EQ(runProgram("function C() { this.v = 1; return {v: 99}; } "
                       "print(new C().v);"),
            "99\n") << "constructor returning an object overrides this";
  EXPECT_EQ(runProgram("function C() { this.v = 1; return 5; } "
                       "print(new C().v);"),
            "1\n") << "constructor returning a primitive keeps this";
}

TEST(InterpTest, MethodsViaProperties) {
  EXPECT_EQ(runProgram("function getA() { return this.a; } "
                       "var o = {a: 7}; o.get = getA; print(o.get());"),
            "7\n");
}

TEST(InterpTest, Arrays) {
  EXPECT_EQ(runProgram("var a = [10, 20, 30]; print(a[1]); print(a.length);"),
            "20\n3\n");
  EXPECT_EQ(runProgram("var a = []; a[0] = 'x'; a[2] = 'z'; print(a.length); "
                       "print(a[1]);"),
            "3\nundefined\n");
  EXPECT_EQ(runProgram("var a = new Array(5); print(a.length);"), "5\n");
  EXPECT_EQ(runProgram("var a = [1]; a.push(2); a.push(3); print(a.length); "
                       "print(a.pop()); print(a.length);"),
            "3\n3\n2\n");
  EXPECT_EQ(runProgram("print([1, 2, 3].join('-'));"), "1-2-3\n");
  EXPECT_EQ(runProgram("print([5, 6, 7].indexOf(6));"), "1\n");
  EXPECT_EQ(runProgram("print([5, 6, 7].indexOf(9));"), "-1\n");
  EXPECT_EQ(runProgram("var a = [1,2]; a[0] += 10; print(a[0]);"), "11\n");
  EXPECT_EQ(runProgram("var a = [7]; print(a[0]++); print(a[0]);"), "7\n8\n");
}

TEST(InterpTest, NamedLengthPropertyWins) {
  EXPECT_EQ(runProgram("var q = {}; q.length = 42; print(q.length);"),
            "42\n");
}

TEST(InterpTest, MathBuiltins) {
  EXPECT_EQ(runProgram("print(Math.floor(3.7));"), "3\n");
  EXPECT_EQ(runProgram("print(Math.ceil(3.2));"), "4\n");
  EXPECT_EQ(runProgram("print(Math.abs(-5));"), "5\n");
  EXPECT_EQ(runProgram("print(Math.sqrt(81));"), "9\n");
  EXPECT_EQ(runProgram("print(Math.min(3, 7));"), "3\n");
  EXPECT_EQ(runProgram("print(Math.max(3, 7));"), "7\n");
  EXPECT_EQ(runProgram("print(Math.pow(2, 10));"), "1024\n");
  EXPECT_EQ(runProgram("print(Math.floor(Math.PI));"), "3\n");
  EXPECT_EQ(runProgram("var r = Math.random(); print(r >= 0 && r < 1);"),
            "true\n");
}

TEST(InterpTest, Recursion) {
  EXPECT_EQ(runProgram("function fib(n) { if (n < 2) return n; "
                       "return fib(n - 1) + fib(n - 2); } print(fib(12));"),
            "144\n");
}

TEST(InterpTest, MutualRecursion) {
  EXPECT_EQ(runProgram(
                "function isEven(n) { if (n == 0) return true; return "
                "isOdd(n - 1); } function isOdd(n) { if (n == 0) return "
                "false; return isEven(n - 1); } print(isEven(10));"),
            "true\n");
}

TEST(InterpTest, FunctionsAsValues) {
  EXPECT_EQ(runProgram("function dbl(x) { return x * 2; } "
                       "var f = dbl; print(f(21));"),
            "42\n");
  EXPECT_EQ(runProgram("function a() { return 1; } function b() { return 2; }"
                       "var fns = [a, b]; print(fns[0]() + fns[1]());"),
            "3\n");
}

TEST(InterpTest, GlobalsSharedAcrossFunctions) {
  EXPECT_EQ(runProgram("var counter = 0; function bump() { counter += 1; } "
                       "bump(); bump(); print(counter);"),
            "2\n");
}

TEST(InterpTest, ArgumentCountMismatch) {
  EXPECT_EQ(runProgram("function f(a, b) { return b; } print(f(1));"),
            "undefined\n");
  EXPECT_EQ(runProgram("function f(a) { return a; } print(f(1, 2, 3));"),
            "1\n");
}

TEST(InterpTest, StringKeyedAccess) {
  EXPECT_EQ(runProgram("var o = {abc: 9}; var k = 'abc'; print(o[k]);"),
            "9\n");
}

TEST(InterpTest, NegativeAndFractionalIndices) {
  EXPECT_EQ(runProgram("var a = [1, 2]; print(a[-1]);"), "undefined\n");
  EXPECT_EQ(runProgram("var a = [1, 2]; print(a[0.5]);"), "undefined\n");
}

// Runtime errors ----------------------------------------------------------

TEST(InterpTest, RuntimeErrorPropertyOfUndefined) {
  Engine E((EngineConfig()));
  ASSERT_TRUE(E.load("var u; print(u.x);"));
  EXPECT_FALSE(E.runTopLevel());
  EXPECT_NE(E.lastError().find("non-object"), std::string::npos);
}

TEST(InterpTest, RuntimeErrorCallNonFunction) {
  Engine E((EngineConfig()));
  ASSERT_TRUE(E.load("var u = 5; u();"));
  EXPECT_FALSE(E.runTopLevel());
}

TEST(InterpTest, RuntimeErrorStackOverflow) {
  Engine E((EngineConfig()));
  ASSERT_TRUE(E.load("function f() { return f(); } f();"));
  EXPECT_FALSE(E.runTopLevel());
  EXPECT_NE(E.lastError().find("stack overflow"), std::string::npos);
}

TEST(InterpTest, DeterministicRandom) {
  std::string A = runProgram("print(Math.random()); print(Math.random());");
  std::string B = runProgram("print(Math.random()); print(Math.random());");
  EXPECT_EQ(A, B) << "Math.random must be deterministic per engine";
}

} // namespace
