//===- tests/ParserTest.cpp -----------------------------------------------===//

#include "frontend/Parser.h"

#include <gtest/gtest.h>

using namespace ccjs;

namespace {

Program parseOk(std::string_view Src) {
  ParseResult R = parseProgram(Src);
  EXPECT_TRUE(R.Ok) << R.Error << " at line " << R.ErrorLine;
  return std::move(R.Prog);
}

std::string parseErr(std::string_view Src) {
  ParseResult R = parseProgram(Src);
  EXPECT_FALSE(R.Ok) << "expected a syntax error";
  return R.Error;
}

/// Initializer of the first declarator of the first (var) statement.
Expr &D(Program &P) {
  return *static_cast<VarDeclStmt &>(*P.Body[0]).Decls[0].second;
}

TEST(ParserTest, EmptyProgram) {
  EXPECT_TRUE(parseOk("").Body.empty());
}

TEST(ParserTest, VarDeclMulti) {
  Program P = parseOk("var a = 1, b, c = 2;");
  ASSERT_EQ(P.Body.size(), 1u);
  auto &D = static_cast<VarDeclStmt &>(*P.Body[0]);
  ASSERT_EQ(D.Decls.size(), 3u);
  EXPECT_EQ(D.Decls[0].first, "a");
  EXPECT_NE(D.Decls[0].second, nullptr);
  EXPECT_EQ(D.Decls[1].second, nullptr);
}

TEST(ParserTest, PrecedenceMulOverAdd) {
  Program P = parseOk("x = 1 + 2 * 3;");
  auto &E = static_cast<ExprStmt &>(*P.Body[0]);
  auto &A = static_cast<AssignExpr &>(*E.E);
  auto &Add = static_cast<BinaryExpr &>(*A.Value);
  EXPECT_EQ(Add.Op, BinaryOp::Add);
  EXPECT_EQ(static_cast<BinaryExpr &>(*Add.Rhs).Op, BinaryOp::Mul);
}

TEST(ParserTest, PrecedenceShiftVsCompare) {
  Program P = parseOk("x = a << 2 < b;");
  auto &A = static_cast<AssignExpr &>(
      *static_cast<ExprStmt &>(*P.Body[0]).E);
  EXPECT_EQ(static_cast<BinaryExpr &>(*A.Value).Op, BinaryOp::Lt);
}

TEST(ParserTest, LogicalShortCircuitStructure) {
  Program P = parseOk("x = a && b || c;");
  auto &A = static_cast<AssignExpr &>(
      *static_cast<ExprStmt &>(*P.Body[0]).E);
  auto &Or = static_cast<LogicalExpr &>(*A.Value);
  EXPECT_EQ(Or.Op, LogicalOp::Or);
  EXPECT_EQ(static_cast<LogicalExpr &>(*Or.Lhs).Op, LogicalOp::And);
}

TEST(ParserTest, ConditionalExpression) {
  Program P = parseOk("x = a ? 1 : 2;");
  auto &A = static_cast<AssignExpr &>(
      *static_cast<ExprStmt &>(*P.Body[0]).E);
  EXPECT_EQ(A.Value->Kind, ExprKind::Conditional);
}

TEST(ParserTest, MemberChainsAndCalls) {
  Program P = parseOk("a.b.c(1)[2].d;");
  auto &E = static_cast<ExprStmt &>(*P.Body[0]);
  EXPECT_EQ(E.E->Kind, ExprKind::Member);
  auto &M = static_cast<MemberExpr &>(*E.E);
  EXPECT_EQ(M.Property, "d");
  EXPECT_EQ(M.Object->Kind, ExprKind::Index);
}

TEST(ParserTest, NewWithMembers) {
  Program P = parseOk("var q = new Foo(1, 2).bar;");
  auto &D = static_cast<VarDeclStmt &>(*P.Body[0]);
  EXPECT_EQ(D.Decls[0].second->Kind, ExprKind::Member);
}

TEST(ParserTest, NewWithoutParens) {
  Program P = parseOk("var q = new Foo;");
  EXPECT_EQ(D(P).Kind, ExprKind::New);
}

TEST(ParserTest, FunctionDecl) {
  Program P = parseOk("function add(a, b) { return a + b; }");
  auto &F = static_cast<FunctionDeclStmt &>(*P.Body[0]);
  EXPECT_EQ(F.Name, "add");
  EXPECT_EQ(F.Params, (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(F.Body->Body.size(), 1u);
}

TEST(ParserTest, ForLoopAllClauses) {
  Program P = parseOk("for (var i = 0; i < 10; i++) { }");
  auto &F = static_cast<ForStmt &>(*P.Body[0]);
  EXPECT_NE(F.Init, nullptr);
  EXPECT_NE(F.Cond, nullptr);
  EXPECT_NE(F.Step, nullptr);
}

TEST(ParserTest, ForLoopEmptyClauses) {
  Program P = parseOk("for (;;) { break; }");
  auto &F = static_cast<ForStmt &>(*P.Body[0]);
  EXPECT_EQ(F.Init, nullptr);
  EXPECT_EQ(F.Cond, nullptr);
  EXPECT_EQ(F.Step, nullptr);
}

TEST(ParserTest, DoWhile) {
  Program P = parseOk("do { x = 1; } while (x < 3);");
  EXPECT_EQ(P.Body[0]->Kind, StmtKind::DoWhile);
}

TEST(ParserTest, ObjectLiteral) {
  Program P = parseOk("var o = { a: 1, 'b': 2, c: f() };");
  auto &O = static_cast<ObjectLitExpr &>(D(P));
  ASSERT_EQ(O.Properties.size(), 3u);
  EXPECT_EQ(O.Properties[1].first, "b");
}

TEST(ParserTest, ArrayLiteral) {
  Program P = parseOk("var a = [1, 2, [3]];");
  auto &A = static_cast<ArrayLitExpr &>(D(P));
  EXPECT_EQ(A.Elements.size(), 3u);
}

TEST(ParserTest, UpdateExpressions) {
  Program P = parseOk("i++; ++i; a.x--; a[0]++;");
  for (const StmtPtr &S : P.Body) {
    EXPECT_EQ(static_cast<ExprStmt &>(*S).E->Kind, ExprKind::Update);
  }
}

TEST(ParserTest, CompoundAssignTargets) {
  Program P = parseOk("x += 1; a.b -= 2; a[i] *= 3;");
  for (const StmtPtr &S : P.Body) {
    auto &A = static_cast<AssignExpr &>(*static_cast<ExprStmt &>(*S).E);
    EXPECT_TRUE(A.IsCompound);
  }
}

TEST(ParserTest, TypeofOperator) {
  Program P = parseOk("x = typeof y;");
  auto &A = static_cast<AssignExpr &>(
      *static_cast<ExprStmt &>(*P.Body[0]).E);
  EXPECT_EQ(static_cast<UnaryExpr &>(*A.Value).Op, UnaryOp::Typeof);
}

// Error cases -------------------------------------------------------------

TEST(ParserTest, ErrorMissingParen) {
  parseErr("if (x { }");
}

TEST(ParserTest, ErrorAssignToLiteral) {
  EXPECT_NE(parseErr("1 = 2;").find("assignment target"), std::string::npos);
}

TEST(ParserTest, ErrorNestedFunction) {
  EXPECT_NE(parseErr("function f() { function g() {} }").find("top level"),
            std::string::npos);
}

TEST(ParserTest, ErrorReturnOutsideFunction) {
  parseErr("return 1;");
}

TEST(ParserTest, ErrorNumericObjectKey) {
  parseErr("var o = {1: 2};");
}

TEST(ParserTest, ErrorReportsLine) {
  ParseResult R = parseProgram("var a = 1;\nvar b = ;\n");
  ASSERT_FALSE(R.Ok);
  EXPECT_EQ(R.ErrorLine, 2u);
}

/// Pathologically nested input must produce a clean "nesting too deep"
/// error, not a native stack overflow (each nesting level consumes several
/// recursive-descent frames).
TEST(ParserTest, DeepParenNestingFailsCleanly) {
  std::string Src = "var x = ";
  for (int I = 0; I < 50000; ++I)
    Src += '(';
  Src += '1';
  for (int I = 0; I < 50000; ++I)
    Src += ')';
  Src += ';';
  EXPECT_NE(parseErr(Src).find("nesting too deep"), std::string::npos);
}

TEST(ParserTest, DeepUnaryNestingFailsCleanly) {
  std::string Src = "var x = ";
  Src += std::string(50000, '~');
  Src += "1;";
  EXPECT_NE(parseErr(Src).find("nesting too deep"), std::string::npos);
}

TEST(ParserTest, DeepStatementNestingFailsCleanly) {
  std::string Src;
  for (int I = 0; I < 50000; ++I)
    Src += "if (1) ";
  Src += "x = 1;";
  EXPECT_NE(parseErr(Src).find("nesting too deep"), std::string::npos);
}

TEST(ParserTest, NestingAtLimitStillParses) {
  // Well below the limit (each paren level costs a few recursion frames):
  // nesting depth must not affect normal programs.
  std::string Src = "var x = ";
  for (int I = 0; I < 50; ++I)
    Src += '(';
  Src += '1';
  for (int I = 0; I < 50; ++I)
    Src += ')';
  Src += ';';
  parseOk(Src);
}

} // namespace
