//===- tests/DispatchEquivalenceTest.cpp - Dispatch-mode oracle -----------===//
///
/// The host-throughput work must be invisible to the simulation. Two
/// families of oracles enforce that:
///
///  * Dispatch: the portable switch loop is the reference; the
///    computed-goto (token-threaded) loops stamped from the same handler
///    text (jit/ExecutorLoop.inc, interp/InterpreterLoop.inc) and the
///    superinstruction-fused executor (FusionPass rewrites plus batched
///    event charging, DESIGN.md 4.8) must produce byte-identical
///    observable behaviour — print output, serialized RunStats, engine
///    metrics and fault trip logs — for every differential program,
///    including under chaos fault injection. The fused leg always runs;
///    the threaded legs are skipped in builds without the computed-goto
///    extension.
///
///  * Memory model: CacheSim's MRU short-circuit and one-entry repeat-block
///    memo are checked access-for-access against a naive true-LRU reference
///    model on randomized address streams.
///
//===----------------------------------------------------------------------===//

#include "DiffPrograms.h"
#include "TestUtil.h"

#include "core/BenchHarness.h"
#include "core/Metrics.h"
#include "hw/CacheSim.h"
#include "support/Dispatch.h"
#include "support/FaultInjector.h"

#include <random>
#include <vector>

using namespace ccjs;

namespace {

using test::DiffProgram;
using test::Programs;

constexpr uint64_t NumDispatchSeeds = 16;

/// Everything observable about one engine run, rendered to strings so the
/// comparison is a byte-identity check rather than a field-by-field one.
struct RunImage {
  bool Ok = false;
  std::string Error;
  std::string Output;
  std::string Stats;
  std::string Metrics;
  std::string TripLog;
};

RunImage runImage(const char *Source, EngineConfig Config, DispatchMode Mode) {
  Config.Dispatch = Mode;
  RunImage R;
  Engine E(Config);
  if (!E.load(Source) || !E.runTopLevel()) {
    R.Error = E.lastError();
    return R;
  }
  R.Ok = true;
  R.Output = E.output();
  R.Stats = statsToJson(E.stats()).dump(2);
  if (const MetricsRegistry *M = E.metrics())
    R.Metrics = M->render();
  if (const FaultInjector *FI = E.faultInjector())
    R.TripLog = FI->renderTripLog();
  return R;
}

void expectIdentical(const RunImage &Switch, const RunImage &Other,
                     const std::string &What) {
  ASSERT_EQ(Switch.Ok, Other.Ok)
      << What << ": one mode halted (" << Switch.Error << Other.Error
      << ")";
  ASSERT_TRUE(Switch.Ok) << What << ": " << Switch.Error;
  EXPECT_EQ(Switch.Output, Other.Output) << What << ": output diverged";
  EXPECT_EQ(Switch.Stats, Other.Stats) << What << ": RunStats diverged";
  EXPECT_EQ(Switch.Metrics, Other.Metrics) << What << ": metrics diverged";
  EXPECT_EQ(Switch.TripLog, Other.TripLog)
      << What << ": fault trip log diverged";
}

/// Compares every non-reference dispatch mode against the switch image.
/// Fused always runs (it rides the switch loop); threaded only exists in
/// computed-goto builds.
void expectAllModesIdentical(const char *Source, const EngineConfig &C,
                             const std::string &What) {
  RunImage Sw = runImage(Source, C, DispatchMode::Switch);
  RunImage Fu = runImage(Source, C, DispatchMode::Fused);
  expectIdentical(Sw, Fu, What + " [fused]");
#if CCJS_THREADED_DISPATCH
  RunImage Th = runImage(Source, C, DispatchMode::Threaded);
  expectIdentical(Sw, Th, What + " [threaded]");
#endif
}

class DispatchEquivalenceTest : public ::testing::TestWithParam<DiffProgram> {
};

/// Fault-free byte identity, with metrics on, under both the baseline and
/// the Class Cache configuration (both tiers get exercised either way:
/// functions run interpreted before tiering up).
TEST_P(DispatchEquivalenceTest, StatsAndMetricsIdentical) {
  const DiffProgram &P = GetParam();
  for (bool ClassCache : {false, true}) {
    EngineConfig C = test::hotConfig(ClassCache);
    C.MetricsEnabled = true;
    expectAllModesIdentical(P.Source, C,
                            ClassCache ? "class-cache" : "baseline");
  }
}

/// Chaos sweep: under deterministic fault injection (deopts, invalidation
/// storms...) every seed must still be byte-identical across the dispatch
/// modes — the fault schedule itself is part of the identity, so a fused
/// handler that consulted the injector in a different order (or a
/// different number of times) than the component ops would diverge here.
TEST_P(DispatchEquivalenceTest, ChaosSeedsIdentical) {
  const DiffProgram &P = GetParam();
  for (uint64_t Seed = 1; Seed <= NumDispatchSeeds; ++Seed) {
    EngineConfig C = test::hotConfig(/*ClassCache=*/true);
    C.Faults.Enabled = true;
    C.Faults.Seed = Seed;
    C.AuditInvariants = true;
    C.MetricsEnabled = true;
    expectAllModesIdentical(P.Source, C,
                            "chaos seed " + std::to_string(Seed));
  }
}

INSTANTIATE_TEST_SUITE_P(Programs, DispatchEquivalenceTest,
                         ::testing::ValuesIn(Programs),
                         [](const auto &Info) {
                           return std::string(Info.param.Name);
                         });

//===----------------------------------------------------------------------===//
// CacheSim fast paths vs a naive reference model
//===----------------------------------------------------------------------===//

/// Textbook true-LRU set-associative cache: each set is an MRU-first list.
/// No short-circuits, no memos — the specification CacheSim optimizes.
class RefCache {
public:
  RefCache(unsigned NumSets, unsigned Ways, unsigned BlockBytes)
      : NumSets(NumSets), Ways(Ways), BlockBytes(BlockBytes),
        Sets(NumSets) {}

  bool access(uint64_t Addr) {
    ++Accesses;
    uint64_t Block = Addr / BlockBytes;
    std::vector<uint64_t> &S = Sets[Block & (NumSets - 1)];
    for (size_t I = 0; I < S.size(); ++I) {
      if (S[I] == Block) {
        S.erase(S.begin() + I);
        S.insert(S.begin(), Block);
        return true;
      }
    }
    ++Misses;
    S.insert(S.begin(), Block);
    if (S.size() > Ways)
      S.pop_back();
    return false;
  }

  void flush() {
    for (std::vector<uint64_t> &S : Sets)
      S.clear();
  }

  uint64_t accesses() const { return Accesses; }
  uint64_t misses() const { return Misses; }

private:
  unsigned NumSets, Ways, BlockBytes;
  std::vector<std::vector<uint64_t>> Sets;
  uint64_t Accesses = 0;
  uint64_t Misses = 0;
};

/// Randomized address stream with the locality patterns the fast paths
/// target: immediate repeats (repeat-block memo), same-page/other-line
/// runs (DTLB memo), strides and uniform randoms, plus occasional flushes.
void checkGeometry(unsigned NumSets, unsigned Ways, unsigned BlockBytes,
                   uint64_t Seed) {
  CacheSim Sim(NumSets, Ways, BlockBytes);
  RefCache Ref(NumSets, Ways, BlockBytes);
  std::mt19937_64 Rng(Seed);
  uint64_t Addr = 0;
  for (int I = 0; I < 20000; ++I) {
    switch (Rng() % 10) {
    case 0:
    case 1:
    case 2:
      break; // Repeat the previous address exactly.
    case 3:
    case 4:
      Addr += 8; // Sequential walk within / across blocks.
      break;
    case 5:
      Addr += BlockBytes; // Next block, same set neighborhood.
      break;
    case 6:
      // Same block, different offset (DTLB: same page, other line).
      Addr = (Addr / BlockBytes) * BlockBytes + Rng() % BlockBytes;
      break;
    default:
      Addr = Rng() % (uint64_t(NumSets) * Ways * BlockBytes * 8);
      break;
    }
    if (Rng() % 4096 == 0) {
      Sim.flush();
      Ref.flush();
    }
    bool SimHit = Sim.access(Addr);
    bool RefHit = Ref.access(Addr);
    ASSERT_EQ(SimHit, RefHit)
        << "access " << I << " addr " << Addr << " diverged (geometry "
        << NumSets << "x" << Ways << "x" << BlockBytes << ", seed " << Seed
        << ")";
  }
  EXPECT_EQ(Sim.accesses(), Ref.accesses());
  EXPECT_EQ(Sim.misses(), Ref.misses());
}

TEST(CacheSimEquivalenceTest, RandomStreamsMatchReferenceModel) {
  for (uint64_t Seed = 1; Seed <= 8; ++Seed) {
    checkGeometry(64, 4, 64, Seed);    // DL1-like.
    checkGeometry(512, 8, 64, Seed);   // L2-like.
    checkGeometry(16, 4, 4096, Seed);  // DTLB-like (page "lines").
    checkGeometry(8, 1, 64, Seed);     // Direct-mapped edge case.
    checkGeometry(1, 2, 64, Seed);     // Single-set edge case.
  }
}

/// countRepeatHit must be exactly "access() that is a guaranteed way-0
/// hit": same counters, no replacement-state change.
TEST(CacheSimEquivalenceTest, CountRepeatHitMatchesAccess) {
  CacheSim A(16, 4, 64), B(16, 4, 64);
  for (uint64_t Addr : {0x40ull, 0x80ull, 0x40ull}) {
    A.access(Addr);
    B.access(Addr);
  }
  // A repeat of the last address: real access vs the caller-proven count.
  A.access(0x44);
  B.countRepeatHit();
  EXPECT_EQ(A.accesses(), B.accesses());
  EXPECT_EQ(A.misses(), B.misses());
  // Subsequent behaviour must stay in lockstep.
  std::mt19937_64 Rng(3);
  for (int I = 0; I < 2000; ++I) {
    uint64_t Addr = Rng() % (16 * 4 * 64 * 8);
    EXPECT_EQ(A.access(Addr), B.access(Addr));
  }
  EXPECT_EQ(A.accesses(), B.accesses());
  EXPECT_EQ(A.misses(), B.misses());
}

} // namespace
