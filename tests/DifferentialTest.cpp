//===- tests/DifferentialTest.cpp - Cross-tier / cross-config equality ----===//
///
/// The central correctness property of the system: a program's observable
/// behaviour (print output) must be identical
///   * between the baseline tier and the optimizing tier, and
///   * between the state-of-the-art configuration and the Class Cache
///     configuration (including its ablations),
/// for every program, including those that break their own monomorphism
/// mid-run.
///
//===----------------------------------------------------------------------===//

#include "DiffPrograms.h"
#include "TestUtil.h"

using namespace ccjs;

namespace {

using test::DiffProgram;
using test::Programs;

class DifferentialTest : public ::testing::TestWithParam<DiffProgram> {};

TEST_P(DifferentialTest, BaselineVsClassCache) {
  const DiffProgram &P = GetParam();
  std::string Base = test::runProgram(P.Source, test::hotConfig(false));
  std::string Cc = test::runProgram(P.Source, test::hotConfig(true));
  EXPECT_EQ(Base, Cc) << "mechanism changed observable behaviour";
  EXPECT_NE(Base, "") << "program printed nothing";
}

TEST_P(DifferentialTest, InterpreterOnlyVsTiered) {
  const DiffProgram &P = GetParam();
  EngineConfig ColdCfg;
  ColdCfg.HotInvocationThreshold = 1000000; // Never optimize.
  ColdCfg.HotLoopThreshold = 1u << 30;
  std::string Cold = test::runProgram(P.Source, ColdCfg);
  std::string Hot = test::runProgram(P.Source, test::hotConfig(false));
  EXPECT_EQ(Cold, Hot) << "optimizing tier changed observable behaviour";
}

TEST_P(DifferentialTest, SoftwareOnlyClassCache) {
  const DiffProgram &P = GetParam();
  EngineConfig Sw = test::hotConfig(true);
  Sw.SoftwareOnlyClassCache = true;
  std::string Base = test::runProgram(P.Source, test::hotConfig(true));
  std::string SwOut = test::runProgram(P.Source, Sw);
  EXPECT_EQ(Base, SwOut);
}

TEST_P(DifferentialTest, AblationCombinations) {
  const DiffProgram &P = GetParam();
  std::string Ref = test::runProgram(P.Source, test::hotConfig(true));
  for (int Mask = 0; Mask < 8; ++Mask) {
    EngineConfig C = test::hotConfig(true);
    C.ElideCheckMaps = Mask & 1;
    C.ElideCheckSmi = Mask & 2;
    C.ElideCheckNonSmi = Mask & 4;
    C.HoistClassIdArray = Mask & 1;
    EXPECT_EQ(test::runProgram(P.Source, C), Ref)
        << "ablation mask " << Mask << " changed behaviour";
  }
}

INSTANTIATE_TEST_SUITE_P(Programs, DifferentialTest,
                         ::testing::ValuesIn(Programs),
                         [](const auto &Info) {
                           return std::string(Info.param.Name);
                         });

} // namespace
