//===- tests/ProgramGenTest.cpp - Generator and reducer self-tests --------===//
///
/// The workload generator is itself test infrastructure, so it gets its
/// own contract tests: seed determinism, knob monotonicity (a degree-N
/// config must actually create >= N hidden-class families, measured
/// through the MetricsRegistry's shape counters, not trusted from the
/// emitter), and soundness of the greedy reducer.
///
//===----------------------------------------------------------------------===//

#include "DiffPrograms.h"

#include "core/Engine.h"
#include "core/Metrics.h"
#include "frontend/Parser.h"
#include "gen/ProgramGen.h"
#include "gen/Reducer.h"

#include <gtest/gtest.h>

using namespace ccjs;
using namespace ccjs::gen;

namespace {

uint64_t counterValue(const MetricsRegistry *M, std::string_view Name) {
  if (!M)
    return 0;
  for (const auto &C : M->counters())
    if (C.first == Name)
      return C.second;
  return 0;
}

/// Runs \p Source on the pure interpreter with metrics on; returns the
/// number of Plain-object shapes created (the shape-transition footprint).
uint64_t plainShapesCreated(const std::string &Source) {
  Engine E(Engine::Options().withNoOpt().withMetrics());
  EXPECT_TRUE(E.load(Source)) << E.lastError();
  EXPECT_TRUE(E.runTopLevel()) << E.lastError();
  return counterValue(E.metrics(), "shapes_created_plain");
}

GenConfig baseConfig(uint64_t Seed) {
  GenConfig C;
  C.Seed = Seed;
  C.PolymorphismDegree = 2;
  C.ShapeTransitionDepth = 3;
  C.ElementsKindChurn = 20;
  C.CallGraphFanOut = 2;
  C.NumFunctions = 3;
  C.LoopIterations = 50;
  C.TopLevelRepeats = 6;
  C.EdgeCaseRate = 10;
  return C;
}

TEST(ProgramGenTest, SameSeedSameProgram) {
  for (uint64_t Seed : {1ull, 42ull, 1234567ull}) {
    GenConfig C = GenConfig::fromSeed(Seed);
    EXPECT_EQ(generateProgram(C), generateProgram(C))
        << "seed " << Seed << " is not deterministic";
  }
}

TEST(ProgramGenTest, DifferentSeedsDifferentPrograms) {
  EXPECT_NE(generateProgram(GenConfig::fromSeed(1)),
            generateProgram(GenConfig::fromSeed(2)));
}

TEST(ProgramGenTest, EveryDerivedConfigParses) {
  for (uint64_t Seed = 1; Seed <= 50; ++Seed) {
    std::string Source = generateProgram(GenConfig::fromSeed(Seed));
    ParseResult R = parseProgram(Source);
    EXPECT_TRUE(R.Ok) << "seed " << Seed << ": " << R.Error << " at line "
                      << R.ErrorLine;
  }
}

TEST(ProgramGenTest, PolymorphismDegreeCreatesThatManyFamilies) {
  uint64_t Prev = 0;
  for (unsigned Degree : {1u, 2u, 4u, 6u}) {
    GenConfig C = baseConfig(/*Seed=*/7);
    C.PolymorphismDegree = Degree;
    uint64_t Shapes = plainShapesCreated(generateProgram(C));
    // Every constructor family builds its own transition chain, so at
    // least Degree distinct Plain shapes must be created.
    EXPECT_GE(Shapes, Degree) << "degree " << Degree;
    EXPECT_GE(Shapes, Prev) << "degree " << Degree
                            << " created fewer shapes than a lower degree";
    Prev = Shapes;
  }
}

TEST(ProgramGenTest, ShapeDepthLengthensTransitionChains) {
  uint64_t Prev = 0;
  for (unsigned Depth : {1u, 3u, 6u, 8u}) {
    GenConfig C = baseConfig(/*Seed=*/11);
    C.ShapeTransitionDepth = Depth;
    uint64_t Shapes = plainShapesCreated(generateProgram(C));
    EXPECT_GE(Shapes, static_cast<uint64_t>(Depth)) << "depth " << Depth;
    EXPECT_GE(Shapes, Prev) << "depth " << Depth
                            << " created fewer shapes than a lower depth";
    Prev = Shapes;
  }
}

//===----------------------------------------------------------------------===//
// Reducer
//===----------------------------------------------------------------------===//

unsigned countLines(const std::string &S) {
  unsigned N = 0;
  for (char C : S)
    N += C == '\n';
  return N;
}

TEST(ReducerTest, PreservesPredicateAndShrinks) {
  std::string Source = generateProgram(GenConfig::fromSeed(3));
  // Keep any program that still parses and still touches global G0.
  auto Keep = [](const std::string &S) {
    return parseProgram(S).Ok && S.find("G0") != std::string::npos;
  };
  ReduceStats Stats;
  std::string Reduced = reduceProgram(Source, Keep, &Stats);
  EXPECT_TRUE(Keep(Reduced));
  EXPECT_LT(countLines(Reduced), countLines(Source));
  EXPECT_EQ(Stats.LinesBefore, countLines(Source));
  EXPECT_EQ(Stats.LinesAfter, countLines(Reduced));
  EXPECT_GT(Stats.PredicateCalls, 1u);
}

TEST(ReducerTest, ReducedProgramStillParses) {
  std::string Source = generateProgram(GenConfig::fromSeed(9));
  auto Keep = [](const std::string &S) { return parseProgram(S).Ok; };
  std::string Reduced = reduceProgram(Source, Keep);
  EXPECT_TRUE(parseProgram(Reduced).Ok);
}

TEST(ReducerTest, FalsePredicateReturnsInputUnchanged) {
  std::string Source = generateProgram(GenConfig::fromSeed(5));
  ReduceStats Stats;
  std::string Out = reduceProgram(
      Source, [](const std::string &) { return false; }, &Stats);
  EXPECT_EQ(Out, Source);
  EXPECT_EQ(Stats.PredicateCalls, 1u);
}

/// End-to-end: shrinking a committed reproducer around a semantic
/// predicate (the baseline's halt) keeps the halt and loses lines.
TEST(ReducerTest, ShrinksAroundBaselineHalt) {
  auto HaltsOnBadIndex = [](const std::string &S) {
    Engine E(Engine::Options().withNoOpt());
    if (!E.load(S))
      return false;
    return !E.runTopLevel() &&
           E.lastError().find("array index") != std::string::npos;
  };
  std::string Source = test::SoundnessPrograms[0].Source;
  ASSERT_TRUE(HaltsOnBadIndex(Source));
  std::string Reduced = reduceProgram(Source, HaltsOnBadIndex);
  EXPECT_TRUE(HaltsOnBadIndex(Reduced));
  EXPECT_LE(countLines(Reduced), countLines(Source));
}

} // namespace
