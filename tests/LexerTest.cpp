//===- tests/LexerTest.cpp ------------------------------------------------===//

#include "frontend/Lexer.h"

#include <gtest/gtest.h>

#include <vector>

using namespace ccjs;

namespace {

std::vector<Token> lexAll(std::string_view Src) {
  Lexer L(Src);
  std::vector<Token> Out;
  for (;;) {
    Token T = L.next();
    Out.push_back(T);
    if (T.Kind == TokenKind::Eof || T.Kind == TokenKind::Error)
      break;
  }
  return Out;
}

std::vector<TokenKind> kindsOf(std::string_view Src) {
  std::vector<TokenKind> Out;
  for (const Token &T : lexAll(Src))
    Out.push_back(T.Kind);
  return Out;
}

TEST(LexerTest, EmptyInput) {
  EXPECT_EQ(kindsOf(""), std::vector<TokenKind>{TokenKind::Eof});
}

TEST(LexerTest, Identifiers) {
  auto Toks = lexAll("foo _bar $baz x1");
  ASSERT_EQ(Toks.size(), 5u);
  EXPECT_EQ(Toks[0].Text, "foo");
  EXPECT_EQ(Toks[1].Text, "_bar");
  EXPECT_EQ(Toks[2].Text, "$baz");
  EXPECT_EQ(Toks[3].Text, "x1");
}

TEST(LexerTest, Keywords) {
  EXPECT_EQ(kindsOf("var function return"),
            (std::vector<TokenKind>{TokenKind::KwVar, TokenKind::KwFunction,
                                    TokenKind::KwReturn, TokenKind::Eof}));
}

TEST(LexerTest, DecimalNumbers) {
  auto Toks = lexAll("0 42 3.5 1e3 2.5e-2 7E+1");
  EXPECT_DOUBLE_EQ(Toks[0].NumValue, 0);
  EXPECT_DOUBLE_EQ(Toks[1].NumValue, 42);
  EXPECT_DOUBLE_EQ(Toks[2].NumValue, 3.5);
  EXPECT_DOUBLE_EQ(Toks[3].NumValue, 1000);
  EXPECT_DOUBLE_EQ(Toks[4].NumValue, 0.025);
  EXPECT_DOUBLE_EQ(Toks[5].NumValue, 70);
}

TEST(LexerTest, HexNumbers) {
  auto Toks = lexAll("0x0 0xff 0XDEAD");
  EXPECT_DOUBLE_EQ(Toks[0].NumValue, 0);
  EXPECT_DOUBLE_EQ(Toks[1].NumValue, 255);
  EXPECT_DOUBLE_EQ(Toks[2].NumValue, 57005);
}

TEST(LexerTest, NumberFollowedByDotCall) {
  // `1.e` must not swallow the identifier: 1 . e? Our grammar only allows
  // fraction digits after '.', so "1.x" lexes as 1, '.', x.
  auto Kinds = kindsOf("1.x");
  EXPECT_EQ(Kinds, (std::vector<TokenKind>{TokenKind::Number, TokenKind::Dot,
                                           TokenKind::Identifier,
                                           TokenKind::Eof}));
}

TEST(LexerTest, Strings) {
  auto Toks = lexAll(R"("hello" 'world')");
  EXPECT_EQ(Toks[0].Text, "hello");
  EXPECT_EQ(Toks[1].Text, "world");
}

TEST(LexerTest, StringEscapes) {
  auto Toks = lexAll(R"("a\nb\t\\\"\x41")");
  EXPECT_EQ(Toks[0].Text, "a\nb\t\\\"A");
}

TEST(LexerTest, UnterminatedString) {
  auto Toks = lexAll("\"abc");
  EXPECT_EQ(Toks.back().Kind, TokenKind::Error);
}

TEST(LexerTest, LineComments) {
  EXPECT_EQ(kindsOf("1 // comment\n2"),
            (std::vector<TokenKind>{TokenKind::Number, TokenKind::Number,
                                    TokenKind::Eof}));
}

TEST(LexerTest, BlockComments) {
  EXPECT_EQ(kindsOf("1 /* multi\nline */ 2"),
            (std::vector<TokenKind>{TokenKind::Number, TokenKind::Number,
                                    TokenKind::Eof}));
}

TEST(LexerTest, LineNumbers) {
  auto Toks = lexAll("a\nb\n\nc");
  EXPECT_EQ(Toks[0].Line, 1u);
  EXPECT_EQ(Toks[1].Line, 2u);
  EXPECT_EQ(Toks[2].Line, 4u);
}

TEST(LexerTest, OperatorMaximalMunch) {
  EXPECT_EQ(kindsOf("a >>> b >> c > d >= e >>>= f"),
            (std::vector<TokenKind>{
                TokenKind::Identifier, TokenKind::Shr, TokenKind::Identifier,
                TokenKind::Sar, TokenKind::Identifier, TokenKind::Gt,
                TokenKind::Identifier, TokenKind::Ge, TokenKind::Identifier,
                TokenKind::ShrAssign, TokenKind::Identifier, TokenKind::Eof}));
}

TEST(LexerTest, EqualityOperators) {
  EXPECT_EQ(kindsOf("= == === != !== !"),
            (std::vector<TokenKind>{TokenKind::Assign, TokenKind::EqEq,
                                    TokenKind::EqEqEq, TokenKind::NotEq,
                                    TokenKind::NotEqEq, TokenKind::Bang,
                                    TokenKind::Eof}));
}

TEST(LexerTest, IncrementAndCompound) {
  EXPECT_EQ(kindsOf("++ -- += -= *= /= %= &= |= ^= <<="),
            (std::vector<TokenKind>{
                TokenKind::PlusPlus, TokenKind::MinusMinus,
                TokenKind::PlusAssign, TokenKind::MinusAssign,
                TokenKind::StarAssign, TokenKind::SlashAssign,
                TokenKind::PercentAssign, TokenKind::AmpAssign,
                TokenKind::PipeAssign, TokenKind::CaretAssign,
                TokenKind::ShlAssign, TokenKind::Eof}));
}

TEST(LexerTest, UnexpectedCharacter) {
  EXPECT_EQ(kindsOf("@").front(), TokenKind::Error);
}

} // namespace
