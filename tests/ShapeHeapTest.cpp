//===- tests/ShapeHeapTest.cpp --------------------------------------------===//

#include "runtime/Heap.h"
#include "runtime/Shape.h"

#include <gtest/gtest.h>

using namespace ccjs;

namespace {

class HeapTest : public ::testing::Test {
protected:
  HeapTest() : Heap_(Mem, Shapes, Names) {}

  SimMemory Mem;
  ShapeTable Shapes;
  StringInterner Names;
  Heap Heap_;
};

TEST_F(HeapTest, ShapeTransitionsAreShared) {
  InternedString X = Names.intern("x");
  ShapeId A = Shapes.transition(Shapes.plainRoot(), X);
  ShapeId B = Shapes.transition(Shapes.plainRoot(), X);
  EXPECT_EQ(A, B);
  InternedString Y = Names.intern("y");
  ShapeId AY = Shapes.transition(A, Y);
  EXPECT_NE(AY, A);
  EXPECT_EQ(Shapes.get(AY).NumSlots, 2u);
  EXPECT_EQ(Shapes.lookup(AY, X), std::optional<uint32_t>(0));
  EXPECT_EQ(Shapes.lookup(AY, Y), std::optional<uint32_t>(1));
  EXPECT_EQ(Shapes.lookup(A, Y), std::nullopt);
}

TEST_F(HeapTest, TransitionOrderMatters) {
  InternedString X = Names.intern("x"), Y = Names.intern("y");
  ShapeId XY = Shapes.transition(Shapes.transition(Shapes.plainRoot(), X), Y);
  ShapeId YX = Shapes.transition(Shapes.transition(Shapes.plainRoot(), Y), X);
  EXPECT_NE(XY, YX);
}

TEST_F(HeapTest, ClassIdsAreConsecutiveAndSmall) {
  ShapeId A = Shapes.transition(Shapes.plainRoot(), Names.intern("p"));
  ShapeId B = Shapes.transition(A, Names.intern("q"));
  EXPECT_EQ(Shapes.get(B).ClassId, Shapes.get(A).ClassId + 1);
  EXPECT_LT(Shapes.get(B).ClassId, UntrackedClassId);
}

TEST_F(HeapTest, ConstructorRootsDistinct) {
  ShapeId A = Shapes.rootForConstructor(1);
  ShapeId B = Shapes.rootForConstructor(2);
  EXPECT_NE(A, B);
  EXPECT_EQ(Shapes.rootForConstructor(1), A);
}

TEST_F(HeapTest, CreationHookFires) {
  std::vector<ShapeId> Created;
  Shapes.setCreationHook([&](ShapeId Id) { Created.push_back(Id); });
  ShapeId A = Shapes.transition(Shapes.plainRoot(), Names.intern("h"));
  ASSERT_EQ(Created.size(), 1u);
  EXPECT_EQ(Created[0], A);
}

TEST_F(HeapTest, OddballsAreCanonical) {
  EXPECT_EQ(Heap_.undefined(), Heap_.undefined());
  EXPECT_NE(Heap_.undefined(), Heap_.null());
  EXPECT_NE(Heap_.trueValue(), Heap_.falseValue());
  EXPECT_EQ(Heap_.kindOf(Heap_.undefined()), ValueKind::Undefined);
  EXPECT_EQ(Heap_.kindOf(Heap_.null()), ValueKind::Null);
  EXPECT_EQ(Heap_.kindOf(Heap_.boolean(true)), ValueKind::Boolean);
}

TEST_F(HeapTest, ObjectAlignmentAndHeader) {
  Value O = Heap_.allocObject(Shapes.plainRoot(), 4);
  uint64_t Addr = O.asPointer();
  EXPECT_EQ(Addr % 64, 0u) << "objects must be cache-line aligned";
  EXPECT_EQ(Heap_.shapeOf(Addr), Shapes.plainRoot());
  EXPECT_EQ(Heap_.capacityOf(Addr), 4u);
}

TEST_F(HeapTest, MultiLineHeadersCarryLineNumbers) {
  Value O = Heap_.allocObject(Shapes.plainRoot(), 18); // 3 lines.
  uint64_t Addr = O.asPointer();
  for (uint32_t L = 0; L < 3; ++L) {
    uint64_t H = Mem.read64(Addr + L * 64);
    EXPECT_EQ(layout::headerLine(H), L);
    EXPECT_EQ(layout::headerClassId(H),
              Shapes.get(Shapes.plainRoot()).ClassId);
  }
}

TEST_F(HeapTest, AddPropertyTransitionsAndStores) {
  Value O = Heap_.allocObject(Shapes.plainRoot(), 4);
  uint64_t Addr = O.asPointer();
  uint32_t Slot = Heap_.addProperty(Addr, Names.intern("x"),
                                    Value::makeSmi(42));
  EXPECT_EQ(Slot, 0u);
  EXPECT_EQ(Heap_.getSlot(Addr, 0), Value::makeSmi(42));
  // The header (including the ClassID tag byte) must be rewritten.
  EXPECT_NE(Heap_.shapeOf(Addr), Shapes.plainRoot());
  EXPECT_EQ(layout::headerClassId(Mem.read64(Addr)),
            Shapes.get(Heap_.shapeOf(Addr)).ClassId);
}

TEST_F(HeapTest, OverflowPropertiesWork) {
  Value O = Heap_.allocObject(Shapes.plainRoot(), 4);
  uint64_t Addr = O.asPointer();
  // Add more properties than the in-object capacity.
  for (int I = 0; I < 12; ++I)
    Heap_.addProperty(Addr, Names.intern("p" + std::to_string(I)),
                      Value::makeSmi(I));
  for (uint32_t I = 0; I < 12; ++I) {
    EXPECT_EQ(Heap_.getSlot(Addr, I), Value::makeSmi(int32_t(I)));
    bool InObject = true;
    Heap_.slotAddress(Addr, I, &InObject);
    EXPECT_EQ(InObject, I < 4);
  }
}

TEST_F(HeapTest, SlotAddressMatchesLayout) {
  Value O = Heap_.allocObject(Shapes.plainRoot(), 11);
  uint64_t Addr = O.asPointer();
  bool InObject = false;
  EXPECT_EQ(Heap_.slotAddress(Addr, 0, &InObject),
            Addr + layout::slotByteOffset(0));
  EXPECT_TRUE(InObject);
  EXPECT_EQ(Heap_.slotAddress(Addr, 5, &InObject), Addr + 64 + 2 * 8);
}

TEST_F(HeapTest, ElementsGrowAndKeepValues) {
  Value A = Heap_.allocArray(0);
  uint64_t Addr = A.asPointer();
  EXPECT_EQ(Heap_.elementsLength(Addr), 0);
  for (int I = 0; I < 100; ++I)
    Heap_.setElement(Addr, I, Value::makeSmi(I * 3));
  EXPECT_EQ(Heap_.elementsLength(Addr), 100);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(Heap_.getElement(Addr, I), Value::makeSmi(I * 3));
  EXPECT_EQ(Heap_.getElement(Addr, 100), Heap_.undefined());
  EXPECT_EQ(Heap_.getElement(Addr, -1), Heap_.undefined());
}

TEST_F(HeapTest, ArrayWithInitialLength) {
  Value A = Heap_.allocArray(10);
  uint64_t Addr = A.asPointer();
  EXPECT_EQ(Heap_.elementsLength(Addr), 10);
  EXPECT_EQ(Heap_.getElement(Addr, 5), Heap_.undefined());
}

TEST_F(HeapTest, SparseStoreUpdatesLength) {
  Value A = Heap_.allocArray(0);
  uint64_t Addr = A.asPointer();
  EXPECT_TRUE(Heap_.setElement(Addr, 50, Value::makeSmi(1)));
  EXPECT_EQ(Heap_.elementsLength(Addr), 51);
  EXPECT_EQ(Heap_.getElement(Addr, 25), Heap_.undefined());
}

TEST_F(HeapTest, NumberBoxing) {
  EXPECT_TRUE(Heap_.number(5).isSmi());
  EXPECT_TRUE(Heap_.number(-7).isSmi());
  EXPECT_FALSE(Heap_.number(0.5).isSmi());
  EXPECT_FALSE(Heap_.number(1e10).isSmi());
  EXPECT_FALSE(Heap_.number(-0.0).isSmi()) << "-0 must not become SMI 0";
  Value H = Heap_.number(3.25);
  EXPECT_DOUBLE_EQ(Heap_.numberValue(H), 3.25);
  EXPECT_EQ(Heap_.kindOf(H), ValueKind::HeapNumber);
}

TEST_F(HeapTest, Strings) {
  Value S = Heap_.allocString("hello");
  uint64_t Addr = S.asPointer();
  EXPECT_EQ(Heap_.stringLength(Addr), 5u);
  EXPECT_EQ(Heap_.stringContents(Addr), "hello");
  EXPECT_EQ(Heap_.stringCharAt(Addr, 1), 'e');
  EXPECT_EQ(Heap_.kindOf(S), ValueKind::String);
}

TEST_F(HeapTest, Functions) {
  Value F = Heap_.allocFunction(17);
  EXPECT_EQ(Heap_.kindOf(F), ValueKind::Function);
  EXPECT_EQ(Heap_.functionIndex(F.asPointer()), 17u);
}

TEST_F(HeapTest, ClassIdOfValue) {
  EXPECT_EQ(Heap_.classIdOfValue(Value::makeSmi(3)), SmiClassId);
  Value N = Heap_.allocHeapNumber(1.5);
  EXPECT_EQ(Heap_.classIdOfValue(N),
            Shapes.get(Shapes.heapNumberShape()).ClassId);
}

TEST_F(HeapTest, SlackTracking) {
  EXPECT_EQ(Heap_.constructorCapacityHint(5), layout::slotsForLines(2));
  Heap_.observeConstructed(5, 3);
  EXPECT_EQ(Heap_.constructorCapacityHint(5), 3u);
  Heap_.observeConstructed(5, 9);
  EXPECT_EQ(Heap_.constructorCapacityHint(5), 9u);
  Heap_.observeConstructed(5, 2); // Never shrinks.
  EXPECT_EQ(Heap_.constructorCapacityHint(5), 9u);
}

TEST_F(HeapTest, StatsTrackMultiLineObjects) {
  HeapStats Before = Heap_.stats();
  Heap_.allocObject(Shapes.plainRoot(), 4);
  Heap_.allocObject(Shapes.plainRoot(), 18);
  const HeapStats &After = Heap_.stats();
  EXPECT_EQ(After.ObjectsAllocated - Before.ObjectsAllocated, 2u);
  EXPECT_EQ(After.MultiLineObjects - Before.MultiLineObjects, 1u);
  EXPECT_EQ(After.ExtraHeaderBytes - Before.ExtraHeaderBytes, 16u);
}

} // namespace
