//===- tests/JsonTest.cpp - JSON writer/parser tests ----------------------===//

#include "support/Json.h"

#include <gtest/gtest.h>

#include <cmath>
#include <optional>

using namespace ccjs;

namespace {

TEST(JsonTest, ScalarDump) {
  EXPECT_EQ(json::Value().dump(), "null");
  EXPECT_EQ(json::Value(true).dump(), "true");
  EXPECT_EQ(json::Value(false).dump(), "false");
  EXPECT_EQ(json::Value(42).dump(), "42");
  EXPECT_EQ(json::Value(1.5).dump(), "1.5");
  EXPECT_EQ(json::Value("hi").dump(), "\"hi\"");
}

TEST(JsonTest, NumbersRoundTripShortest) {
  // Integral doubles print without an exponent or trailing ".0"; irrational
  // values print the shortest digits that round-trip exactly.
  EXPECT_EQ(json::formatNumber(1000000), "1000000");
  EXPECT_EQ(json::formatNumber(0.1), "0.1");
  double V = 1.0 / 3.0;
  std::string S = json::formatNumber(V);
  std::string Err;
  std::optional<json::Value> P = json::Value::parse(S, &Err);
  ASSERT_TRUE(P.has_value()) << Err;
  EXPECT_EQ(P->asNumber(), V);
}

TEST(JsonTest, NonFiniteNumbersBecomeNull) {
  EXPECT_EQ(json::Value(std::nan("")).dump(), "null");
  EXPECT_EQ(json::Value(INFINITY).dump(), "null");
}

TEST(JsonTest, OptionalMapsToNull) {
  json::Value V(std::optional<double>{});
  EXPECT_TRUE(V.isNull());
  json::Value W(std::optional<double>{2.5});
  EXPECT_EQ(W.asNumber(), 2.5);
}

TEST(JsonTest, StringEscaping) {
  EXPECT_EQ(json::Value("a\"b\\c\n\t").dump(), "\"a\\\"b\\\\c\\n\\t\"");
  EXPECT_EQ(json::Value(std::string(1, '\x01')).dump(), "\"\\u0001\"");
}

TEST(JsonTest, ObjectPreservesInsertionOrder) {
  json::Value O = json::Value::object();
  O.set("zebra", 1);
  O.set("alpha", 2);
  O.set("mid", 3);
  EXPECT_EQ(O.dump(), "{\"zebra\":1,\"alpha\":2,\"mid\":3}");
  // set() on an existing key overwrites in place without reordering.
  O.set("alpha", 9);
  EXPECT_EQ(O.dump(), "{\"zebra\":1,\"alpha\":9,\"mid\":3}");
}

TEST(JsonTest, FindPath) {
  std::string Err;
  std::optional<json::Value> V = json::Value::parse(
      R"({"a": {"b": {"c": 7}}, "x": [1, 2]})", &Err);
  ASSERT_TRUE(V.has_value()) << Err;
  const json::Value *C = V->findPath("a.b.c");
  ASSERT_NE(C, nullptr);
  EXPECT_EQ(C->asNumber(), 7);
  EXPECT_EQ(V->findPath("a.b.missing"), nullptr);
  EXPECT_EQ(V->findPath("x.y"), nullptr);
}

TEST(JsonTest, ParseRoundTrip) {
  const char *Src = R"({"n":null,"t":true,"s":"a\nb","arr":[1,2.5,-3],)"
                    R"("obj":{"k":"v"}})";
  std::string Err;
  std::optional<json::Value> V = json::Value::parse(Src, &Err);
  ASSERT_TRUE(V.has_value()) << Err;
  EXPECT_EQ(V->dump(), Src);
}

TEST(JsonTest, PrettyPrintParsesBack) {
  json::Value O = json::Value::object();
  O.set("a", 1);
  json::Value Arr = json::Value::array();
  Arr.push("x");
  Arr.push(json::Value());
  O.set("list", std::move(Arr));
  std::string Pretty = O.dump(2);
  EXPECT_NE(Pretty.find('\n'), std::string::npos);
  std::string Err;
  std::optional<json::Value> Back = json::Value::parse(Pretty, &Err);
  ASSERT_TRUE(Back.has_value()) << Err;
  EXPECT_EQ(Back->dump(), O.dump());
}

TEST(JsonTest, ParseUnicodeEscape) {
  std::string Err;
  std::optional<json::Value> V = json::Value::parse(R"("\u00e9")", &Err);
  ASSERT_TRUE(V.has_value()) << Err;
  EXPECT_EQ(V->asString(), "\xc3\xa9"); // UTF-8 e-acute.
}

TEST(JsonTest, ParseErrorsReportOffset) {
  std::string Err;
  EXPECT_FALSE(json::Value::parse("{\"a\": }", &Err).has_value());
  EXPECT_NE(Err.find("at byte"), std::string::npos);
  EXPECT_FALSE(json::Value::parse("[1, 2", &Err).has_value());
  EXPECT_FALSE(json::Value::parse("", &Err).has_value());
  EXPECT_FALSE(json::Value::parse("true false", &Err).has_value());
}

} // namespace
