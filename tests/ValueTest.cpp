//===- tests/ValueTest.cpp ------------------------------------------------===//

#include "runtime/Value.h"

#include <gtest/gtest.h>

using namespace ccjs;

namespace {

TEST(ValueTest, DefaultIsSmiZero) {
  Value V;
  EXPECT_TRUE(V.isSmi());
  EXPECT_EQ(V.asSmi(), 0);
}

TEST(ValueTest, SmiTagBit) {
  // The paper's encoding: SMIs have the least-significant bit cleared and
  // their payload in the 32 most-significant bits.
  Value V = Value::makeSmi(7);
  EXPECT_EQ(V.bits() & 1, 0u);
  EXPECT_EQ(V.bits() >> 32, 7u);
}

TEST(ValueTest, PointerTagBit) {
  Value V = Value::makePointer(0x1000);
  EXPECT_TRUE(V.isPointer());
  EXPECT_FALSE(V.isSmi());
  EXPECT_EQ(V.bits() & 1, 1u);
  EXPECT_EQ(V.asPointer(), 0x1000u);
}

TEST(ValueTest, Equality) {
  EXPECT_EQ(Value::makeSmi(5), Value::makeSmi(5));
  EXPECT_NE(Value::makeSmi(5), Value::makeSmi(6));
  EXPECT_NE(Value::makeSmi(5), Value::makePointer(0x500000000ull & ~1ull));
}

TEST(ValueTest, FitsSmi) {
  EXPECT_TRUE(Value::fitsSmi(0));
  EXPECT_TRUE(Value::fitsSmi(INT32_MAX));
  EXPECT_TRUE(Value::fitsSmi(INT32_MIN));
  EXPECT_FALSE(Value::fitsSmi(int64_t(INT32_MAX) + 1));
  EXPECT_FALSE(Value::fitsSmi(int64_t(INT32_MIN) - 1));
}

class SmiRoundTrip : public ::testing::TestWithParam<int32_t> {};

TEST_P(SmiRoundTrip, EncodesAndDecodes) {
  int32_t N = GetParam();
  Value V = Value::makeSmi(N);
  EXPECT_TRUE(V.isSmi());
  EXPECT_EQ(V.asSmi(), N);
  EXPECT_EQ(Value::fromBits(V.bits()), V);
}

INSTANTIATE_TEST_SUITE_P(Boundaries, SmiRoundTrip,
                         ::testing::Values(0, 1, -1, 2, -2, 42, -42,
                                           INT32_MAX, INT32_MIN,
                                           INT32_MAX - 1, INT32_MIN + 1,
                                           0x7FFF, -0x8000, 123456789,
                                           -123456789));

TEST(ValueTest, SmiSweepProperty) {
  // Pseudo-random sweep: round trip must hold for arbitrary payloads.
  uint32_t X = 0x12345678;
  for (int I = 0; I < 10000; ++I) {
    X = X * 1664525u + 1013904223u;
    int32_t N = static_cast<int32_t>(X);
    Value V = Value::makeSmi(N);
    ASSERT_TRUE(V.isSmi());
    ASSERT_EQ(V.asSmi(), N);
  }
}

} // namespace
