//===- tests/BudgetTest.cpp - Per-request resource budgets ----------------===//
///
/// Service-mode resource governance (DESIGN.md 4.9): per-request budgets
/// for simulated instructions, heap bytes and call depth, checked at
/// safepoints (loop back-edges, call entries, tier-up boundaries) off
/// counters the engine already maintains. The contract under test:
///
///  * A trip halts cleanly with the BudgetExceeded error prefix, reports
///    the tripped kind and safepoint through the EngineObserver API, and
///    leaves the engine reusable (the EngineReuseTest contract).
///  * Budgets are host-side observation: a budgets-off run and an armed-
///    but-unhit run are byte-identical in output and simulated stats, and
///    a trip itself charges no simulated events — so the trip point is
///    identical across all dispatch modes and is stable under chaos for a
///    fixed seed (the fault schedule is part of the identity).
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "core/BenchHarness.h"
#include "support/Dispatch.h"
#include "support/FaultInjector.h"

#include <string>
#include <vector>

using namespace ccjs;

namespace {

constexpr uint64_t NumBudgetChaosSeeds = 16;

const char *LoopProgram = R"js(
function run(n) {
  var s = 0; var i;
  for (i = 0; i < n; i++) { s = (s + i * 3) % 99991; }
  return s;
}
var j; for (j = 0; j < 20; j++) print(run(500));
)js";

const char *RecursionProgram = R"js(
function down(n, acc) {
  if (n <= 0) { return acc; }
  return down(n - 1, acc + n);
}
print(down(100, 0));
)js";

const char *AllocProgram = R"js(
function Box(v) { this.v = v; }
function churn(n) {
  var s = 0; var i;
  for (i = 0; i < n; i++) { s = s + new Box(i).v; }
  return s;
}
print(churn(5000));
)js";

/// Captures budget events for safepoint/kind assertions.
struct BudgetCapture : EngineObserver {
  std::vector<BudgetEvent> Events;
  void onBudgetExceeded(VMState &, const BudgetEvent &E) override {
    Events.push_back(E);
  }
};

struct BudgetRun {
  bool Ok = false;
  bool Tripped = false;
  std::string Error;
  std::string Output;
  std::vector<BudgetEvent> Events;
};

BudgetRun runWithBudget(const char *Source, EngineConfig C,
                        const BudgetConfig &B, DispatchMode Mode) {
  C.Dispatch = Mode;
  C.Budget = B;
  Engine E(C);
  BudgetCapture Cap;
  E.addObserver(&Cap);
  BudgetRun R;
  R.Ok = E.load(Source) && E.runTopLevel();
  R.Tripped = E.budgetExceeded();
  R.Error = E.lastError();
  R.Output = E.output();
  R.Events = Cap.Events;
  E.removeObserver(&Cap);
  return R;
}

//===----------------------------------------------------------------------===//
// Safepoint kinds
//===----------------------------------------------------------------------===//

TEST(BudgetTest, InstructionBudgetTripsAtLoopBackEdge) {
  BudgetConfig B;
  B.MaxInstructions = 2000;
  BudgetRun R = runWithBudget(LoopProgram, test::hotConfig(false), B,
                              DispatchMode::Switch);
  EXPECT_FALSE(R.Ok);
  EXPECT_TRUE(R.Tripped);
  EXPECT_EQ(R.Error.rfind(VMState::BudgetErrorPrefix, 0), 0u)
      << "error not budget-prefixed: " << R.Error;
  ASSERT_EQ(R.Events.size(), 1u);
  EXPECT_EQ(R.Events[0].Kind, BudgetKind::Instructions);
  EXPECT_EQ(R.Events[0].Safepoint, BudgetSafepoint::LoopBackEdge);
  EXPECT_GT(R.Events[0].Used, R.Events[0].Limit);
}

TEST(BudgetTest, CallDepthBudgetTripsAtCallEntry) {
  BudgetConfig B;
  B.MaxCallDepth = 30;
  BudgetRun R = runWithBudget(RecursionProgram, test::hotConfig(false), B,
                              DispatchMode::Switch);
  EXPECT_FALSE(R.Ok);
  ASSERT_EQ(R.Events.size(), 1u);
  EXPECT_EQ(R.Events[0].Kind, BudgetKind::CallDepth);
  EXPECT_EQ(R.Events[0].Safepoint, BudgetSafepoint::CallEntry);
  EXPECT_EQ(R.Events[0].Used, 31u);
  EXPECT_EQ(R.Events[0].Limit, 30u);
}

TEST(BudgetTest, HeapBudgetTrips) {
  BudgetConfig B;
  B.MaxHeapBytes = 1 << 14;
  BudgetRun R = runWithBudget(AllocProgram, test::hotConfig(false), B,
                              DispatchMode::Switch);
  EXPECT_FALSE(R.Ok);
  ASSERT_EQ(R.Events.size(), 1u);
  EXPECT_EQ(R.Events[0].Kind, BudgetKind::HeapBytes);
}

TEST(BudgetTest, TierUpSafepointFiresForStraightLineHotFunction) {
  // No loops inside f, so the only safepoints its calls reach are the call
  // entry and the tier-up boundary. With the budget sized to exhaust
  // between one call's entry check and the invocation that makes f hot,
  // the trip lands exactly on the tier-up safepoint (which is consulted
  // before the optimizing compile starts).
  const char *Straight = R"js(
function f(a) { return a * 3 + 1; }
var s = 0;
var i; for (i = 0; i < 50; i++) { s = s + f(i); }
print(s);
)js";
  EngineConfig C = test::hotConfig(false);
  C.HotInvocationThreshold = 2;
  bool SawTierUpTrip = false;
  // Sweep the budget downward until one lands on the tier-up boundary;
  // the sweep is deterministic, so the hit (asserted below) is stable.
  for (uint64_t Budget = 220; Budget >= 40 && !SawTierUpTrip; --Budget) {
    BudgetConfig B;
    B.MaxInstructions = Budget;
    BudgetRun R = runWithBudget(Straight, C, B, DispatchMode::Switch);
    if (!R.Events.empty() &&
        R.Events[0].Safepoint == BudgetSafepoint::TierUp)
      SawTierUpTrip = true;
  }
  EXPECT_TRUE(SawTierUpTrip)
      << "no budget in the sweep tripped at the tier-up boundary";
}

//===----------------------------------------------------------------------===//
// Mode identity and chaos stability
//===----------------------------------------------------------------------===//

/// Budget trips read simulated counters, which are byte-identical across
/// dispatch modes; therefore the trip point, the error text and the output
/// prefix must be identical in switch, threaded and fused dispatch — for
/// every chaos seed (faults shift the counters, but identically in every
/// mode).
TEST(BudgetTest, TripIdenticalAcrossDispatchModesAndChaosSeeds) {
  for (uint64_t Seed = 1; Seed <= NumBudgetChaosSeeds; ++Seed) {
    EngineConfig C = test::hotConfig(true);
    C.Faults.Enabled = true;
    C.Faults.Seed = Seed;
    BudgetConfig B;
    B.MaxInstructions = 30000;
    BudgetRun Sw = runWithBudget(LoopProgram, C, B, DispatchMode::Switch);
    BudgetRun Fu = runWithBudget(LoopProgram, C, B, DispatchMode::Fused);
    EXPECT_EQ(Sw.Tripped, Fu.Tripped) << "seed " << Seed;
    EXPECT_EQ(Sw.Error, Fu.Error) << "seed " << Seed;
    EXPECT_EQ(Sw.Output, Fu.Output) << "seed " << Seed;
#if CCJS_THREADED_DISPATCH
    BudgetRun Th = runWithBudget(LoopProgram, C, B, DispatchMode::Threaded);
    EXPECT_EQ(Sw.Tripped, Th.Tripped) << "seed " << Seed;
    EXPECT_EQ(Sw.Error, Th.Error) << "seed " << Seed;
    EXPECT_EQ(Sw.Output, Th.Output) << "seed " << Seed;
#endif
    // Each safepoint family must be reachable under budgeted chaos runs
    // too: depth budgets keep tripping at call entries with faults live.
    BudgetConfig Depth;
    Depth.MaxCallDepth = 20;
    BudgetRun Rec =
        runWithBudget(RecursionProgram, C, Depth, DispatchMode::Switch);
    BudgetRun RecF =
        runWithBudget(RecursionProgram, C, Depth, DispatchMode::Fused);
    EXPECT_TRUE(Rec.Tripped) << "seed " << Seed;
    EXPECT_EQ(Rec.Error, RecF.Error) << "seed " << Seed;
  }
}

/// Budgets-off vs armed-but-unhit: byte-identical output and simulated
/// stats. This is the "budgets are free" half of the governance contract —
/// the armed run pays only host-side counter comparisons.
TEST(BudgetTest, ArmedUnhitIsByteIdenticalToBudgetsOff) {
  for (DispatchMode Mode :
       {DispatchMode::Switch, DispatchMode::Fused}) {
    EngineConfig C = test::hotConfig(true);
    C.MetricsEnabled = true;

    C.Budget = BudgetConfig(); // Off.
    C.Dispatch = Mode;
    Engine Off(C);
    ASSERT_TRUE(Off.load(LoopProgram) && Off.runTopLevel())
        << Off.lastError();

    C.Budget.MaxInstructions = ~0ull; // Armed, never trips.
    C.Budget.MaxHeapBytes = ~0ull;
    C.Budget.MaxCallDepth = 700;
    Engine On(C);
    ASSERT_TRUE(On.load(LoopProgram) && On.runTopLevel()) << On.lastError();

    EXPECT_EQ(Off.output(), On.output());
    EXPECT_EQ(statsToJson(Off.stats()).dump(2),
              statsToJson(On.stats()).dump(2));
    ASSERT_NE(Off.metrics(), nullptr);
    ASSERT_NE(On.metrics(), nullptr);
    EXPECT_EQ(Off.metrics()->render(), On.metrics()->render());
  }
}

//===----------------------------------------------------------------------===//
// Clean-halt contract
//===----------------------------------------------------------------------===//

TEST(BudgetTest, EngineReusableAfterTrip) {
  EngineConfig C = test::hotConfig(true);
  C.Budget.MaxInstructions = 2000;
  Engine E(C);
  ASSERT_TRUE(E.load(LoopProgram));
  EXPECT_FALSE(E.runTopLevel());
  EXPECT_TRUE(E.budgetExceeded());
  EXPECT_EQ(E.budgetExceededKind(), BudgetKind::Instructions);

  // load() starts the next program fresh — including the budget meter,
  // which is rebased so the previous request's spend is not charged.
  ASSERT_TRUE(E.load("print(1 + 2);")) << E.lastError();
  EXPECT_FALSE(E.budgetExceeded());
  ASSERT_TRUE(E.runTopLevel()) << E.lastError();
  EXPECT_EQ(E.output(), "3\n");
}

TEST(BudgetTest, PerRequestBudgetOverrideAndRebase) {
  EngineConfig C = test::hotConfig(false);
  Engine E(C);
  // Arm a tight budget mid-life (the pooled-request path), trip it, then
  // widen it for the next request: the meter restarts per request.
  E.beginServiceRequest();
  BudgetConfig Tight;
  Tight.MaxInstructions = 500;
  E.setRequestBudget(Tight);
  ASSERT_TRUE(E.load(LoopProgram));
  EXPECT_FALSE(E.runTopLevel());
  EXPECT_TRUE(E.budgetExceeded());

  E.beginServiceRequest();
  BudgetConfig Wide;
  Wide.MaxInstructions = ~0ull;
  E.setRequestBudget(Wide);
  ASSERT_TRUE(E.load(LoopProgram));
  ASSERT_TRUE(E.runTopLevel()) << E.lastError();
  EXPECT_FALSE(E.budgetExceeded());
}

TEST(BudgetTest, DepthBudgetMustSitBelowEngineRecursionLimit) {
  Engine::Options Opts;
  Opts.withCallDepthBudget(VMState::MaxCallDepth);
  std::string Err;
  EXPECT_FALSE(Opts.validate(&Err));
  EXPECT_NE(Err.find("recursion limit"), std::string::npos) << Err;

  Engine::Options Ok;
  Ok.withCallDepthBudget(VMState::MaxCallDepth - 1);
  EXPECT_TRUE(Ok.validate(&Err)) << Err;
}

TEST(BudgetTest, BudgetExcludedFromConfigFingerprint) {
  EngineConfig Plain;
  EngineConfig Budgeted;
  Budgeted.Budget.MaxInstructions = 12345;
  EXPECT_EQ(configFingerprint(Plain), configFingerprint(Budgeted))
      << "budgets are per-request service state, not profiled configuration";
}

} // namespace
