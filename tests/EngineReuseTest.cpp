//===- tests/EngineReuseTest.cpp - Engine reuse after errors --------------===//
///
/// An Engine must be reusable: `load` starts a clean program regardless of
/// what the previous program did (including halting with a runtime error),
/// and calls into a halted VM are defined no-ops rather than crashes.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

using namespace ccjs;

namespace {

const char *GoodProgram = R"js(
function run() { var s = 0; var i; for (i = 0; i < 10; i++) s += i; return s; }
print(run());
)js";

const char *HaltingProgram = R"js(
print(1);
missing();
print(2);
)js";

TEST(EngineReuseTest, ReloadAfterRuntimeError) {
  Engine E(test::hotConfig(true));
  ASSERT_TRUE(E.load(HaltingProgram));
  EXPECT_FALSE(E.runTopLevel());
  EXPECT_TRUE(E.halted());
  EXPECT_NE(E.lastError(), "");
  EXPECT_EQ(E.output(), "1\n"); // Stopped at the error.

  // A fresh load must fully reset: no halt flag, no stale error, no output
  // carried over from the failed program.
  ASSERT_TRUE(E.load(GoodProgram)) << E.lastError();
  EXPECT_FALSE(E.halted());
  EXPECT_EQ(E.lastError(), "");
  ASSERT_TRUE(E.runTopLevel()) << E.lastError();
  EXPECT_EQ(E.output(), "45\n");
}

TEST(EngineReuseTest, CallAfterHaltIsDefinedNoOp) {
  Engine E(test::hotConfig(false));
  ASSERT_TRUE(E.load(HaltingProgram));
  ASSERT_FALSE(E.runTopLevel());
  std::string Err = E.lastError();
  ASSERT_NE(Err, "");

  // Calling into the halted VM neither crashes nor loses the diagnostic:
  // lastError() now says the engine was halted, embedding the original
  // error instead of silently repeating it (see the regression test below).
  Value V = E.callGlobal("run");
  EXPECT_TRUE(V == E.vm().Heap_.undefined());
  EXPECT_TRUE(E.halted());
  EXPECT_NE(E.lastError().find(Err), std::string::npos);
  EXPECT_FALSE(E.runTopLevel());
}

TEST(EngineReuseTest, CallAfterHaltSetsFreshHaltedError) {
  // Regression: callGlobal on a halted VM used to return the default Value
  // while leaving lastError() exactly as the *previous* failure left it, so
  // callers could not tell "this call failed that way" from "the engine was
  // already dead". The halted call must refresh the error.
  Engine E(test::hotConfig(false));
  ASSERT_TRUE(E.load(HaltingProgram));
  ASSERT_FALSE(E.runTopLevel());
  std::string Original = E.lastError();
  ASSERT_NE(Original, "");
  ASSERT_EQ(Original.rfind("engine halted", 0), std::string::npos);

  E.callGlobal("run");
  EXPECT_EQ(E.lastError().rfind("engine halted", 0), 0u)
      << "halted call left the stale error: " << E.lastError();
  EXPECT_NE(E.lastError().find(Original), std::string::npos)
      << "original diagnostic was dropped";

  // Repeated calls must not re-wrap the message.
  std::string Once = E.lastError();
  E.callGlobal("run");
  E.callGlobal("other");
  EXPECT_EQ(E.lastError(), Once);

  // load() still fully resets the latch and the error.
  ASSERT_TRUE(E.load(GoodProgram)) << E.lastError();
  EXPECT_EQ(E.lastError(), "");
  ASSERT_TRUE(E.runTopLevel());
  EXPECT_EQ(E.output(), "45\n");
}

TEST(EngineReuseTest, ReloadAfterSyntaxError) {
  Engine E(test::hotConfig(false));
  EXPECT_FALSE(E.load("function ("));
  EXPECT_TRUE(E.halted());
  ASSERT_TRUE(E.load(GoodProgram)) << E.lastError();
  ASSERT_TRUE(E.runTopLevel()) << E.lastError();
  EXPECT_EQ(E.output(), "45\n");
}

TEST(EngineReuseTest, ReloadDiscardsPreviousOutputAndGlobals) {
  Engine E(test::hotConfig(true));
  ASSERT_TRUE(E.load("var leak = 123; print(leak);"));
  ASSERT_TRUE(E.runTopLevel());
  EXPECT_EQ(E.output(), "123\n");

  // The previous program's global value must be gone in the fresh module:
  // `leak` starts over as an undefined global, not 123.
  ASSERT_TRUE(E.load("print(leak);"));
  ASSERT_TRUE(E.runTopLevel()) << E.lastError();
  EXPECT_EQ(E.output(), "undefined\n");
}

//===----------------------------------------------------------------------===//
// Service-request sequences (the pooled-engine contract)
//===----------------------------------------------------------------------===//

TEST(EngineReuseTest, BeginServiceRequestClearsObservationResidue) {
  // A pooled engine serving sequential requests must not leak per-request
  // observation across them: fault trip logs, metrics, host dispatch
  // counters and measurement stats all belong to exactly one request.
  EngineConfig C = test::hotConfig(true);
  C.Faults.Enabled = true;
  C.Faults.Seed = 7;
  for (unsigned P = 0; P < NumFaultPoints; ++P)
    C.Faults.Schedule[P] = 1; // Fire every occurrence: trips guaranteed.
  C.MetricsEnabled = true;
  Engine E(C);

  const char *Hot = R"js(
function run() { var s = 0; var i; for (i = 0; i < 60; i++) s += i; return s; }
var j; for (j = 0; j < 8; j++) print(run());
)js";
  E.beginServiceRequest();
  ASSERT_TRUE(E.load(Hot) && E.runTopLevel()) << E.lastError();
  ASSERT_NE(E.faultInjector(), nullptr);
  ASSERT_FALSE(E.faultInjector()->trips().empty())
      << "test premise: request 1 must fire faults";
  ASSERT_FALSE(E.metrics()->counters().empty());
  ASSERT_GT(E.hostDispatches() + E.stats().Instrs.total(), 0u);
  uint64_t OccAfterFirst =
      E.faultInjector()->occurrences(FaultPoint::AllocPressure);

  // Next request: the logs restart, but the fault *stream* continues (the
  // occurrence counters are warm-profile state, not residue).
  E.beginServiceRequest();
  EXPECT_TRUE(E.faultInjector()->trips().empty());
  EXPECT_EQ(E.faultInjector()->tripCount(FaultPoint::AllocPressure), 0u);
  EXPECT_GE(E.faultInjector()->occurrences(FaultPoint::AllocPressure),
            OccAfterFirst);
  EXPECT_TRUE(E.metrics()->counters().empty());
  EXPECT_TRUE(E.metrics()->histograms().empty());
  EXPECT_EQ(E.hostDispatches(), 0u);
  EXPECT_EQ(E.hostFusedSaved(), 0u);
  EXPECT_EQ(E.stats().Instrs.total(), 0u);
  EXPECT_FALSE(E.budgetExceeded());

  ASSERT_TRUE(E.load(Hot) && E.runTopLevel()) << E.lastError();
  // The second request's trip log attributes only its own trips.
  for (const FaultTrip &T : E.faultInjector()->trips())
    EXPECT_GT(T.Occurrence, 0u);
}

TEST(EngineReuseTest, SequentialServiceRequestsProduceIdenticalOutput) {
  // Three pooled requests running the same program must print the same
  // bytes each time — warm profile state (shapes, Class List, caches) may
  // make later requests *faster*, never *different*.
  Engine E(test::hotConfig(true));
  const char *Prog = R"js(
function Pt(x) { this.x = x; }
var ps = []; var i; for (i = 0; i < 16; i++) ps[i] = new Pt(i * 2);
function run() { var s = 0; var i; for (i = 0; i < 16; i++) s += ps[i].x; return s; }
var j; for (j = 0; j < 6; j++) print(run());
)js";
  std::string First;
  for (int Req = 0; Req < 3; ++Req) {
    E.beginServiceRequest();
    ASSERT_TRUE(E.load(Prog) && E.runTopLevel())
        << "request " << Req << ": " << E.lastError();
    if (Req == 0)
      First = E.output();
    else
      EXPECT_EQ(E.output(), First) << "request " << Req;
  }
}

TEST(EngineReuseTest, ReloadThenReTierUp) {
  // A program that tiers up and speculates, reloaded and re-run: the stale
  // speculation dependencies of the first module (whose function indices
  // mean something else now) must not leak into the second run.
  const char *Speculating = R"js(
function Pt(x) { this.x = x; }
var ps = [];
var i; for (i = 0; i < 20; i++) ps[i] = new Pt(i);
function run() { var s = 0; var i; for (i = 0; i < 20; i++) s += ps[i].x; return s; }
var j; for (j = 0; j < 10; j++) print(run());
)js";
  Engine E(test::hotConfig(true));
  for (int Round = 0; Round < 3; ++Round) {
    ASSERT_TRUE(E.load(Speculating)) << "round " << Round;
    ASSERT_TRUE(E.runTopLevel()) << "round " << Round << ": " << E.lastError();
    std::string Expect;
    for (int J = 0; J < 10; ++J)
      Expect += "190\n";
    EXPECT_EQ(E.output(), Expect) << "round " << Round;
  }
}

} // namespace
