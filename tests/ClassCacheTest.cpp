//===- tests/ClassCacheTest.cpp - Class List & Class Cache protocol -------===//

#include "hw/ClassCache.h"
#include "hw/ClassList.h"
#include "runtime/Layout.h"

#include <gtest/gtest.h>

using namespace ccjs;

namespace {

class ClassCacheTest : public ::testing::Test {
protected:
  ClassCacheTest() : List(Mem), Cache(List, 128, 2) {
    List.bootstrapExisting(Shapes);
    Shapes.setCreationHook(
        [this](ShapeId Id) { List.onShapeCreated(Shapes, Id); });
    X = Names.intern("x");
    Y = Names.intern("y");
  }

  uint8_t classOf(ShapeId S) { return Shapes.get(S).ClassId; }

  SimMemory Mem;
  ShapeTable Shapes;
  StringInterner Names;
  ClassList List;
  ClassCache Cache;
  InternedString X, Y;
};

TEST_F(ClassCacheTest, EntryRoundTrip) {
  ClassListEntry E;
  E.InitMap = 0x50;
  E.ValidMap = 0xA1;
  E.SpeculateMap = 0x08;
  for (unsigned I = 0; I < 7; ++I)
    E.Props[I] = static_cast<uint8_t>(10 + I);
  List.write(3, 1, E);
  ClassListEntry R = List.read(3, 1);
  EXPECT_EQ(R.InitMap, 0x50);
  EXPECT_EQ(R.ValidMap, 0xA1);
  EXPECT_EQ(R.SpeculateMap, 0x08);
  EXPECT_EQ(R.Props[4], 14);
}

TEST_F(ClassCacheTest, FreshEntriesStartAllValid) {
  // Paper: ValidMap initializes to 11111111, InitMap to zeros.
  ShapeId S = Shapes.transition(Shapes.plainRoot(), X);
  ClassListEntry E = List.read(classOf(S), 0);
  EXPECT_EQ(E.InitMap, 0x00);
  EXPECT_EQ(E.ValidMap, 0xFF);
  EXPECT_EQ(E.SpeculateMap, 0x00);
}

TEST_F(ClassCacheTest, FirstStoreInitializesProfile) {
  ShapeId S = Shapes.transition(Shapes.plainRoot(), X);
  ClassCacheResult R = Cache.accessStore(classOf(S), 0, 4, 7);
  EXPECT_FALSE(R.Hit) << "cold access misses";
  EXPECT_FALSE(R.ValidCleared);
  EXPECT_FALSE(R.Exception);
  EXPECT_EQ(Cache.monomorphicClassAt(classOf(S), 0, 4), 7);
}

TEST_F(ClassCacheTest, MatchingStoresKeepMonomorphism) {
  ShapeId S = Shapes.transition(Shapes.plainRoot(), X);
  Cache.accessStore(classOf(S), 0, 4, 7);
  for (int I = 0; I < 100; ++I) {
    ClassCacheResult R = Cache.accessStore(classOf(S), 0, 4, 7);
    EXPECT_TRUE(R.Hit);
    EXPECT_FALSE(R.ValidCleared);
  }
  EXPECT_EQ(Cache.monomorphicClassAt(classOf(S), 0, 4), 7);
  EXPECT_GT(Cache.hitRate(), 0.99);
}

TEST_F(ClassCacheTest, MismatchClearsValidForever) {
  ShapeId S = Shapes.transition(Shapes.plainRoot(), X);
  Cache.accessStore(classOf(S), 0, 4, 7);
  ClassCacheResult R = Cache.accessStore(classOf(S), 0, 4, 9);
  EXPECT_TRUE(R.ValidCleared);
  EXPECT_FALSE(R.Exception) << "no SpeculateMap bit: no exception";
  EXPECT_EQ(Cache.monomorphicClassAt(classOf(S), 0, 4), -1);
  // Returning to the original class must not revalidate.
  Cache.accessStore(classOf(S), 0, 4, 7);
  EXPECT_EQ(Cache.monomorphicClassAt(classOf(S), 0, 4), -1);
}

TEST_F(ClassCacheTest, ExceptionOnlyWhenSpeculated) {
  ShapeId S = Shapes.transition(Shapes.plainRoot(), X);
  Cache.accessStore(classOf(S), 0, 4, 7);
  Cache.setSpeculate(classOf(S), 0, 4);
  List.addFunctionDependency(classOf(S), 0, 4, 1234);
  ClassCacheResult R = Cache.accessStore(classOf(S), 0, 4, 9);
  EXPECT_TRUE(R.Exception);
  EXPECT_EQ(Cache.exceptions(), 1u);
  // The exception routine consumes the FunctionList.
  EXPECT_EQ(List.functionsFor(classOf(S), 0, 4).size(), 1u);
  // A second offending store must not raise again (SpeculateMap cleared).
  ClassCacheResult R2 = Cache.accessStore(classOf(S), 0, 4, 11);
  EXPECT_FALSE(R2.Exception);
}

TEST_F(ClassCacheTest, SlotsAreIndependent) {
  ShapeId S = Shapes.transition(Shapes.plainRoot(), X);
  Cache.accessStore(classOf(S), 0, 4, 7);
  Cache.accessStore(classOf(S), 0, 5, 8);
  Cache.accessStore(classOf(S), 0, 4, 9); // Invalidate slot 4 only.
  EXPECT_EQ(Cache.monomorphicClassAt(classOf(S), 0, 4), -1);
  EXPECT_EQ(Cache.monomorphicClassAt(classOf(S), 0, 5), 8);
}

TEST_F(ClassCacheTest, MissRefillsFromListAndWritesBack) {
  ShapeId S = Shapes.transition(Shapes.plainRoot(), X);
  ClassCacheResult R = Cache.accessStore(classOf(S), 0, 4, 7);
  EXPECT_EQ(R.FillAddr, List.entryAddr(classOf(S), 0));
  // Flush the dirty entry and verify memory holds the profile.
  Cache.flushDirty();
  ClassListEntry E = List.read(classOf(S), 0);
  EXPECT_TRUE(E.InitMap & (1 << 4));
  EXPECT_EQ(E.Props[3], 7); // Props[pos-1].
}

TEST_F(ClassCacheTest, EvictionWritesBackDirtyEntries) {
  // A 4-entry, 2-way cache: three entries mapping to one set force an
  // eviction with writeback.
  ClassCache Small(List, 4, 2);
  ShapeId S1 = Shapes.transition(Shapes.plainRoot(), X);
  (void)S1;
  Small.accessStore(2, 0, 4, 7);  // Set (2<<8|0)&1 = 0.
  Small.accessStore(4, 0, 4, 8);  // Also set 0.
  ClassCacheResult R = Small.accessStore(6, 0, 4, 9); // Evicts (2,0).
  EXPECT_NE(R.WritebackAddr, 0u);
  EXPECT_EQ(Small.writebacks(), 1u);
  // The evicted profile survives in the Class List.
  ClassListEntry E = List.read(2, 0);
  EXPECT_TRUE(E.InitMap & (1 << 4));
  EXPECT_EQ(E.Props[3], 7);
  // And re-fetching it sees the same data.
  EXPECT_EQ(Small.monomorphicClassAt(2, 0, 4), 7);
}

TEST_F(ClassCacheTest, ProfileInheritanceOnTransition) {
  // Constructor pattern: x profiled at shape {x}; creating {x,y} inherits
  // the profile so loads of x on final objects can be elided.
  ShapeId SX = Shapes.transition(Shapes.plainRoot(), X);
  layout::SlotLocation LX = layout::slotLocation(0);
  Cache.accessStore(classOf(SX), LX.Line, LX.Pos, 7);
  Cache.flushDirty();
  ShapeId SXY = Shapes.transition(SX, Y);
  EXPECT_EQ(Cache.monomorphicClassAt(classOf(SXY), LX.Line, LX.Pos), 7);
  ClassListEntry E = List.read(classOf(SXY), 0);
  EXPECT_EQ(E.SpeculateMap, 0) << "dependencies are not inherited";
}

TEST_F(ClassCacheTest, InvalidationPropagatesToDescendants) {
  ShapeId SX = Shapes.transition(Shapes.plainRoot(), X);
  layout::SlotLocation LX = layout::slotLocation(0);
  Cache.accessStore(classOf(SX), LX.Line, LX.Pos, 7);
  Cache.flushDirty();
  ShapeId SXY = Shapes.transition(SX, Y);
  Cache.setSpeculate(classOf(SXY), LX.Line, LX.Pos);
  List.addFunctionDependency(classOf(SXY), LX.Line, LX.Pos, 77);

  // A mismatching store at the PARENT class (an object that later
  // transitions carries the bad value into the child class).
  std::vector<std::pair<uint8_t, uint8_t>> Touched;
  std::vector<uint32_t> Deopt = List.invalidateWithDescendants(
      Shapes, classOf(SX), LX.Line, LX.Pos, Touched);
  ASSERT_EQ(Deopt.size(), 1u);
  EXPECT_EQ(Deopt[0], 77u);
  for (const auto &[C, L] : Touched)
    Cache.syncInvalidatedEntry(C, L);
  EXPECT_EQ(Cache.monomorphicClassAt(classOf(SXY), LX.Line, LX.Pos), -1);
  EXPECT_EQ(Cache.monomorphicClassAt(classOf(SX), LX.Line, LX.Pos), -1);
}

TEST_F(ClassCacheTest, SmiProfile) {
  ShapeId S = Shapes.transition(Shapes.plainRoot(), X);
  Cache.accessStore(classOf(S), 0, 4, SmiClassId);
  EXPECT_EQ(Cache.monomorphicClassAt(classOf(S), 0, 4), SmiClassId);
  ClassCacheResult R = Cache.accessStore(classOf(S), 0, 4, 3);
  EXPECT_TRUE(R.ValidCleared);
}

TEST_F(ClassCacheTest, FunctionDependenciesDeduplicate) {
  List.addFunctionDependency(5, 0, 4, 9);
  List.addFunctionDependency(5, 0, 4, 9);
  List.addFunctionDependency(5, 0, 4, 10);
  EXPECT_EQ(List.functionsFor(5, 0, 4).size(), 2u);
}

TEST_F(ClassCacheTest, StorageUnderPaperBudget) {
  EXPECT_LT(Cache.storageBits() / 8.0, 1536.0)
      << "paper section 5.4: the Class Cache occupies less than 1.5KB";
}

TEST_F(ClassCacheTest, DumpRendersTable1Style) {
  ShapeId S = Shapes.transition(Shapes.plainRoot(), X);
  Cache.accessStore(classOf(S), 0, 4, 7);
  Cache.flushDirty();
  std::string Dump = List.dumpClass(
      classOf(S), 1, [](uint8_t C) { return "class" + std::to_string(C); },
      [](uint32_t F) { return "fn" + std::to_string(F); });
  EXPECT_NE(Dump.find("InitMap=00010000"), std::string::npos) << Dump;
  EXPECT_NE(Dump.find("ValidMap=11111111"), std::string::npos) << Dump;
}

/// Property test: the Class Cache must behave exactly like an uncached
/// reference implementation of the protocol, for random request streams.
class ClassCacheRandomProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(ClassCacheRandomProperty, MatchesReferenceModel) {
  SimMemory Mem;
  ClassList List(Mem);
  ClassCache Cache(List, 8, 2); // Tiny cache: constant evictions.
  // Initialize the entries as shape creation would (ValidMap = 11111111).
  for (uint8_t Cls = 0; Cls < 4; ++Cls)
    List.write(Cls, 0, ClassListEntry());

  struct RefSlot {
    bool Init = false;
    bool Valid = true;
    bool Spec = false;
    uint8_t Cls = 0;
  };
  RefSlot Ref[4][8]; // classes 0..3, positions 0..7.

  uint32_t Seed = GetParam();
  auto Rnd = [&Seed]() {
    Seed = Seed * 1664525u + 1013904223u;
    return Seed >> 16;
  };

  for (int I = 0; I < 5000; ++I) {
    uint8_t Cls = Rnd() % 4;
    uint8_t Pos = 1 + Rnd() % 7;
    uint8_t VC = Rnd() % 3;
    if (Rnd() % 64 == 0)
      Cache.setSpeculate(Cls, 0, Pos);

    RefSlot &R = Ref[Cls][Pos];
    if (Rnd() % 64 == 1)
      R.Spec = true; // Mirror setSpeculate timing below.

    // Reference protocol.
    bool ExpectException = false;
    if (!R.Init) {
      R.Init = true;
      R.Cls = VC;
    } else if (R.Cls != VC && R.Valid) {
      R.Valid = false;
      if (R.Spec) {
        ExpectException = true;
        R.Spec = false;
      }
    }
    (void)ExpectException;

    ClassCacheResult CR = Cache.accessStore(Cls, 0, Pos, VC);
    (void)CR;

    // Compare the observable profile state.
    int Expected = (R.Init && R.Valid) ? R.Cls : -1;
    ASSERT_EQ(Cache.monomorphicClassAt(Cls, 0, Pos), Expected)
        << "iteration " << I;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClassCacheRandomProperty,
                         ::testing::Values(1u, 2u, 3u, 42u, 0xBEEFu));

} // namespace
