//===- tests/FusionPassTest.cpp - Superinstruction fusion unit tests ------===//
///
/// White-box tests for the fusion pass (jit/FusionPass) and the batched
/// event-charging machinery it relies on (hw/EventBatch, ExecContext::
/// chargeBatch). The DispatchEquivalenceTest / generated-corpus oracles
/// prove end-to-end byte identity; these tests pin the individual
/// guarantees that argument rests on:
///
///  * fusion is slot-preserving — only slot 0's opcode (and Aux) change,
///    never Ops.size(), positions, operands or Site fields;
///  * the greedy scan prefers triples over their pair prefixes, and
///    FusedPatternMask ablates patterns by table index;
///  * a non-first component that is a jump target or carries a loop
///    preload is never swallowed (a first-slot preload is fine);
///  * the CheckMap+LoadProp guard predicate (no PreUntag, depth 0, not the
///    HeapNumber shape) and the event template it emits;
///  * EventBatch::append coalesces only adjacent same-category,
///    same-attribution ALU events; and
///  * chargeBatch replays a template through the same primitives as
///    unfused execution — identical counters, cache state and cycles.
///
//===----------------------------------------------------------------------===//

#include "core/Engine.h"
#include "hw/ExecContext.h"
#include "jit/FusionPass.h"
#include "vm/VMState.h"

#include <gtest/gtest.h>

#include <fstream>
#include <initializer_list>
#include <sstream>

using namespace ccjs;

namespace {

OptIrOp makeOp(IrOpcode Op, int32_t A = 0) {
  OptIrOp O;
  O.Op = Op;
  O.A = A;
  return O;
}

/// Handcrafted OptCode: just the ops, with PreloadAt sized to match (the
/// builder derives it from LoopPreloads; here it starts all-clear).
OptCode makeCode(std::initializer_list<OptIrOp> Ops) {
  OptCode C;
  C.Ops = Ops;
  C.PreloadAt.assign(C.Ops.size(), 0);
  return C;
}

/// VMState with every pattern enabled (the fusion pass only consults
/// Config.FusedPatternMask and Shapes.heapNumberShape()).
struct FusionFixture {
  FusionFixture(uint32_t Mask = ~0u) : Cfg(), VM((Cfg.FusedPatternMask = Mask,
                                                  Cfg)) {}
  EngineConfig Cfg;
  VMState VM;
};

TEST(FusionPassTest, PairRewriteIsSlotPreserving) {
  OptCode C = makeCode({makeOp(IrOpcode::LdLocalOp, 2),
                        makeOp(IrOpcode::LdaSmiOp, 7),
                        makeOp(IrOpcode::ReturnOp)});
  FusionFixture F;
  EXPECT_EQ(fuseSuperinstructions(C, F.VM), 1u);
  ASSERT_EQ(C.Ops.size(), 3u);
  // Slot 0: opcode swapped, operands untouched.
  EXPECT_EQ(C.Ops[0].Op, IrOpcode::FusedLdLocalLdaSmiOp);
  EXPECT_EQ(C.Ops[0].A, 2);
  // Slot 1 keeps its original op verbatim: jumps into the middle of the
  // sequence must still land on a valid handler.
  EXPECT_EQ(C.Ops[1].Op, IrOpcode::LdaSmiOp);
  EXPECT_EQ(C.Ops[1].A, 7);
  EXPECT_EQ(C.Ops[2].Op, IrOpcode::ReturnOp);
  // No batch template for operand-independent patterns.
  EXPECT_EQ(C.Ops[0].Aux, -1);
  EXPECT_TRUE(C.Batches.empty());
}

TEST(FusionPassTest, TriplePreferredOverPairPrefix) {
  OptCode C = makeCode({makeOp(IrOpcode::LdLocalOp, 0),
                        makeOp(IrOpcode::LdLocalOp, 1),
                        makeOp(IrOpcode::SmiBinOpOp, 3)});
  FusionFixture F;
  EXPECT_EQ(fuseSuperinstructions(C, F.VM), 1u);
  EXPECT_EQ(C.Ops[0].Op, IrOpcode::FusedLdLocalLdLocalSmiBinOpOp);
  EXPECT_EQ(C.Ops[1].Op, IrOpcode::LdLocalOp);
  EXPECT_EQ(C.Ops[2].Op, IrOpcode::SmiBinOpOp);
}

TEST(FusionPassTest, MaskAblatesByTableIndex) {
  // With the ldloc+ldloc+smibinop triple (table index 0) masked off, the
  // ldloc+ldloc pair (index 2) fuses instead and the SmiBinOp survives.
  OptCode C = makeCode({makeOp(IrOpcode::LdLocalOp, 0),
                        makeOp(IrOpcode::LdLocalOp, 1),
                        makeOp(IrOpcode::SmiBinOpOp, 3)});
  FusionFixture F(~0u & ~(1u << 0));
  EXPECT_EQ(fuseSuperinstructions(C, F.VM), 1u);
  EXPECT_EQ(C.Ops[0].Op, IrOpcode::FusedLdLocalLdLocalOp);
  EXPECT_EQ(C.Ops[2].Op, IrOpcode::SmiBinOpOp);

  // All patterns masked off: the pass is a no-op.
  OptCode C2 = makeCode({makeOp(IrOpcode::LdLocalOp, 0),
                         makeOp(IrOpcode::LdLocalOp, 1),
                         makeOp(IrOpcode::SmiBinOpOp, 3)});
  FusionFixture None(0);
  EXPECT_EQ(fuseSuperinstructions(C2, None.VM), 0u);
  EXPECT_EQ(C2.Ops[0].Op, IrOpcode::LdLocalOp);
}

TEST(FusionPassTest, JumpTargetBlocksNonFirstComponent) {
  // The jump lands on the second LdLocal: swallowing it would leave the
  // jump pointing into the middle of a fused handler's operands.
  OptCode Blocked = makeCode({makeOp(IrOpcode::LdLocalOp, 0),
                              makeOp(IrOpcode::LdLocalOp, 1),
                              makeOp(IrOpcode::JumpOp, 1)});
  FusionFixture F;
  EXPECT_EQ(fuseSuperinstructions(Blocked, F.VM), 0u);
  EXPECT_EQ(Blocked.Ops[0].Op, IrOpcode::LdLocalOp);
  EXPECT_EQ(Blocked.Ops[1].Op, IrOpcode::LdLocalOp);

  // A jump to the *first* component is fine: it enters the fused handler
  // at its normal entry point.
  OptCode Ok = makeCode({makeOp(IrOpcode::LdLocalOp, 0),
                         makeOp(IrOpcode::LdLocalOp, 1),
                         makeOp(IrOpcode::JumpOp, 0)});
  EXPECT_EQ(fuseSuperinstructions(Ok, F.VM), 1u);
  EXPECT_EQ(Ok.Ops[0].Op, IrOpcode::FusedLdLocalLdLocalOp);
}

TEST(FusionPassTest, LoopPreloadBlocksNonFirstComponent) {
  FusionFixture F;
  // Preload at the second component: the fused handler skips that op's
  // prologue, so fusing would drop the preheader work.
  OptCode Blocked = makeCode({makeOp(IrOpcode::LdLocalOp, 0),
                              makeOp(IrOpcode::LdaSmiOp, 5)});
  Blocked.PreloadAt[1] = 1;
  EXPECT_EQ(fuseSuperinstructions(Blocked, F.VM), 0u);
  EXPECT_EQ(Blocked.Ops[0].Op, IrOpcode::LdLocalOp);

  // Preload at the first slot is fine: the fused op runs the normal
  // prologue for its own position.
  OptCode Ok = makeCode({makeOp(IrOpcode::LdLocalOp, 0),
                         makeOp(IrOpcode::LdaSmiOp, 5)});
  Ok.PreloadAt[0] = 1;
  EXPECT_EQ(fuseSuperinstructions(Ok, F.VM), 1u);
  EXPECT_EQ(Ok.Ops[0].Op, IrOpcode::FusedLdLocalLdaSmiOp);
}

TEST(FusionPassTest, CheckMapLoadPropGuardPredicate) {
  FusionFixture F;
  const ShapeId PlainShape = F.VM.Shapes.heapNumberShape() + 1;

  auto Seq = [&](uint16_t Flags, uint8_t Depth, ShapeId Shape) {
    OptIrOp Check = makeOp(IrOpcode::CheckMapOp);
    Check.Flags = Flags;
    Check.Depth = Depth;
    Check.Shape = Shape;
    OptIrOp LoadProp = makeOp(IrOpcode::LoadPropOp);
    LoadProp.B = 1;
    return makeCode({Check, LoadProp});
  };

  // The PreUntag variant checks a number representation, not an object
  // map — the fused single-shape test would not be equivalent.
  OptCode PreUntag = Seq(IrFlagPreUntag, 0, PlainShape);
  EXPECT_EQ(fuseSuperinstructions(PreUntag, F.VM), 0u);

  // Depth != 0: the check guards a value other than the one LoadProp pops.
  OptCode Deep = Seq(0, 1, PlainShape);
  EXPECT_EQ(fuseSuperinstructions(Deep, F.VM), 0u);

  // Guarding the HeapNumber shape: an unboxed double could pass the
  // unfused check but not the fused pointer-shape test.
  OptCode HeapNum = Seq(0, 0, F.VM.Shapes.heapNumberShape());
  EXPECT_EQ(fuseSuperinstructions(HeapNum, F.VM), 0u);

  // The fusable case gets an event-batch template.
  OptCode Fusable = Seq(IrFlagAfterObjectLoad, 0, PlainShape);
  EXPECT_EQ(fuseSuperinstructions(Fusable, F.VM), 1u);
  EXPECT_EQ(Fusable.Ops[0].Op, IrOpcode::FusedCheckMapLoadPropOp);
  ASSERT_EQ(Fusable.Ops[0].Aux, 0);
  ASSERT_EQ(Fusable.Batches.size(), 1u);

  // Pass-path template: CheckMap's map load + compare + (not-taken)
  // branch, then LoadProp's slot load, with the check's after-object-load
  // attribution carried onto the check events only.
  const EventBatch &B = Fusable.Batches[0];
  ASSERT_EQ(B.NumEvs, 4u);
  EXPECT_EQ(B.Evs[0].Kind, BatchEvKind::Load);
  EXPECT_EQ(B.Evs[0].Cat, InstrCategory::Checks);
  EXPECT_TRUE(B.Evs[0].AfterObjLoad);
  EXPECT_EQ(B.Evs[1].Kind, BatchEvKind::Alu);
  EXPECT_EQ(B.Evs[1].Cat, InstrCategory::Checks);
  EXPECT_TRUE(B.Evs[1].AfterObjLoad);
  EXPECT_EQ(B.Evs[1].N, 1u);
  EXPECT_EQ(B.Evs[2].Kind, BatchEvKind::Branch);
  EXPECT_EQ(B.Evs[2].Cat, InstrCategory::Checks);
  EXPECT_TRUE(B.Evs[2].AfterObjLoad);
  EXPECT_EQ(B.Evs[3].Kind, BatchEvKind::Load);
  EXPECT_EQ(B.Evs[3].Cat, InstrCategory::OtherOptimized);
  EXPECT_FALSE(B.Evs[3].AfterObjLoad);
}

TEST(EventBatchTest, AppendCoalescesOnlyAdjacentMatchingAlu) {
  EventBatch B;
  B.append({BatchEvKind::Alu, InstrCategory::OtherOptimized, false, 1});
  B.append({BatchEvKind::Alu, InstrCategory::OtherOptimized, false, 1});
  ASSERT_EQ(B.NumEvs, 1u);
  EXPECT_EQ(B.Evs[0].N, 2u);

  // A different category does not coalesce.
  B.append({BatchEvKind::Alu, InstrCategory::Checks, false, 1});
  ASSERT_EQ(B.NumEvs, 2u);
  EXPECT_EQ(B.Evs[1].N, 1u);

  // A different attribution bit does not coalesce.
  B.append({BatchEvKind::Alu, InstrCategory::Checks, true, 1});
  ASSERT_EQ(B.NumEvs, 3u);

  // A memory event breaks adjacency: the next matching ALU starts fresh.
  B.append({BatchEvKind::Load, InstrCategory::Checks, true, 1});
  B.append({BatchEvKind::Alu, InstrCategory::Checks, true, 1});
  ASSERT_EQ(B.NumEvs, 5u);
  EXPECT_EQ(B.Evs[2].N, 1u);
  EXPECT_EQ(B.Evs[4].N, 1u);
}

/// chargeBatch must be observationally identical to issuing the component
/// primitives one by one — including when two of the ALU events were
/// coalesced into a single N=2 event in the template.
TEST(EventBatchTest, ChargeBatchMatchesIndividualPrimitives) {
  HwConfig Cfg;
  ExecContext Unfused(Cfg), Batched(Cfg);

  // What an unfused CheckMap+LoadProp plus some arithmetic would charge.
  Unfused.alu(InstrCategory::OtherOptimized);
  Unfused.alu(InstrCategory::OtherOptimized);
  Unfused.load(InstrCategory::Checks, 0x1000, /*AfterObjLoad=*/true);
  Unfused.alu(InstrCategory::Checks, 1, /*AfterObjLoad=*/true);
  Unfused.branch(InstrCategory::Checks, /*Site=*/7, /*Taken=*/false,
                 /*AfterObjLoad=*/true);
  Unfused.load(InstrCategory::OtherOptimized, 0x2040);
  Unfused.store(InstrCategory::TagsUntags, 0x1000);

  // The same stream as a template (the leading ALU pair coalesces).
  EventBatch B;
  B.append({BatchEvKind::Alu, InstrCategory::OtherOptimized, false, 1});
  B.append({BatchEvKind::Alu, InstrCategory::OtherOptimized, false, 1});
  B.append({BatchEvKind::Load, InstrCategory::Checks, true, 1});
  B.append({BatchEvKind::Alu, InstrCategory::Checks, true, 1});
  B.append({BatchEvKind::Branch, InstrCategory::Checks, true, 1});
  B.append({BatchEvKind::Load, InstrCategory::OtherOptimized, false, 1});
  B.append({BatchEvKind::Store, InstrCategory::TagsUntags, false, 1});
  ASSERT_EQ(B.NumEvs, 6u); // ALU pair coalesced.
  const BatchOperand Operands[] = {
      {0x1000, false}, {7, false}, {0x2040, false}, {0x1000, false}};
  Batched.chargeBatch(B, Operands);

  // Instruction counters, per category and attribution subset.
  for (unsigned C = 0; C < NumInstrCategories; ++C) {
    EXPECT_EQ(Unfused.instrs().PerCategory[C],
              Batched.instrs().PerCategory[C])
        << "category " << C;
    EXPECT_EQ(Unfused.instrs().ChecksAfterObjectLoad[C],
              Batched.instrs().ChecksAfterObjectLoad[C])
        << "category " << C;
  }
  // Memory hierarchy state (the store to 0x1000 hits the line the check
  // load brought in — a divergence here would catch reordering).
  EXPECT_EQ(Unfused.memory().dl1().accesses(),
            Batched.memory().dl1().accesses());
  EXPECT_EQ(Unfused.memory().dl1().misses(),
            Batched.memory().dl1().misses());
  EXPECT_EQ(Unfused.memory().l2().accesses(),
            Batched.memory().l2().accesses());
  EXPECT_EQ(Unfused.memory().dtlb().misses(),
            Batched.memory().dtlb().misses());
  // Bucket counters and the derived cycle model.
  EXPECT_EQ(Unfused.optimizedBucket().Loads, Batched.optimizedBucket().Loads);
  EXPECT_EQ(Unfused.optimizedBucket().Stores,
            Batched.optimizedBucket().Stores);
  EXPECT_EQ(Unfused.optimizedBucket().Branches,
            Batched.optimizedBucket().Branches);
  EXPECT_EQ(Unfused.optimizedBucket().Mispredicts,
            Batched.optimizedBucket().Mispredicts);
  EXPECT_DOUBLE_EQ(Unfused.totalCycles(), Batched.totalCycles());
}

//===----------------------------------------------------------------------===//
// Dynamic liveness regression
//===----------------------------------------------------------------------===//

/// ROADMAP leftover resolution: the ldloc+ldloc+smibinop triple (pattern
/// 0) only matches when both CheckSmis between the loads and the binop are
/// classically elided, which most programs never produce — leaving the
/// opcode at risk of being dynamically dead. examples/fused_triple.js is
/// the committed workload that keeps it live: the repeated `(a + b)`
/// reads are known-Smi by abstract interpretation, so the second compiles
/// to the bare three-op sequence. This test runs the workload with every
/// pattern BUT the triple masked off and asserts fused dispatch actually
/// saved dispatches — if an IR-builder change re-inserts a check between
/// the loads, the saving drops to zero and this fails.
TEST(FusionPassTest, TripleWorkloadKeepsPatternDynamicallyLive) {
  std::ifstream In(CCJS_REPO_ROOT "/examples/fused_triple.js");
  ASSERT_TRUE(In) << "examples/fused_triple.js missing";
  std::stringstream Buf;
  Buf << In.rdbuf();
  std::string Source = Buf.str();

  EngineConfig C;
  C.HotInvocationThreshold = 2;
  C.HotLoopThreshold = 50;
  C.Dispatch = DispatchMode::Fused;
  C.FusedPatternMask = 1u; // Pattern 0 (the triple) alone.
  Engine Fused(C);
  ASSERT_TRUE(Fused.load(Source) && Fused.runTopLevel())
      << Fused.lastError();
  EXPECT_GT(Fused.hostFusedSaved(), 0u)
      << "ldloc+ldloc+smibinop never fused: the triple has gone "
         "dynamically dead (or the workload regressed)";

  // And the usual transparency half: fusing changes host dispatch counts
  // only, never the printed bytes.
  C.Dispatch = DispatchMode::Switch;
  Engine Ref(C);
  ASSERT_TRUE(Ref.load(Source) && Ref.runTopLevel()) << Ref.lastError();
  EXPECT_EQ(Fused.output(), Ref.output());
}

} // namespace
