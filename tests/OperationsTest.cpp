//===- tests/OperationsTest.cpp - Value semantics helpers -----------------===//

#include "runtime/Operations.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace ccjs;

namespace {

class OpsTest : public ::testing::Test {
protected:
  OpsTest() : H(Mem, Shapes, Names) {}
  SimMemory Mem;
  ShapeTable Shapes;
  StringInterner Names;
  Heap H;
};

TEST_F(OpsTest, ToNumber) {
  EXPECT_DOUBLE_EQ(toNumber(H, Value::makeSmi(42)), 42);
  EXPECT_DOUBLE_EQ(toNumber(H, H.allocHeapNumber(2.5)), 2.5);
  EXPECT_DOUBLE_EQ(toNumber(H, H.allocString("3.5")), 3.5);
  EXPECT_DOUBLE_EQ(toNumber(H, H.allocString("")), 0);
  EXPECT_TRUE(std::isnan(toNumber(H, H.allocString("abc"))));
  EXPECT_TRUE(std::isnan(toNumber(H, H.undefined())));
  EXPECT_DOUBLE_EQ(toNumber(H, H.null()), 0);
  EXPECT_DOUBLE_EQ(toNumber(H, H.trueValue()), 1);
  EXPECT_DOUBLE_EQ(toNumber(H, H.falseValue()), 0);
}

TEST_F(OpsTest, ToInt32Semantics) {
  EXPECT_EQ(toInt32(0), 0);
  EXPECT_EQ(toInt32(3.9), 3);
  EXPECT_EQ(toInt32(-3.9), -3);
  EXPECT_EQ(toInt32(4294967296.0), 0);
  EXPECT_EQ(toInt32(4294967297.0), 1);
  EXPECT_EQ(toInt32(2147483648.0), INT32_MIN);
  EXPECT_EQ(toInt32(-2147483649.0), INT32_MAX);
  EXPECT_EQ(toInt32(std::nan("")), 0);
  EXPECT_EQ(toInt32(INFINITY), 0);
}

TEST_F(OpsTest, NumberToString) {
  EXPECT_EQ(numberToString(0), "0");
  EXPECT_EQ(numberToString(-7), "-7");
  EXPECT_EQ(numberToString(2.5), "2.5");
  EXPECT_EQ(numberToString(1e21), "1e+21");
  EXPECT_EQ(numberToString(std::nan("")), "NaN");
  EXPECT_EQ(numberToString(INFINITY), "Infinity");
  EXPECT_EQ(numberToString(-INFINITY), "-Infinity");
  EXPECT_EQ(numberToString(1000000), "1000000");
}

TEST_F(OpsTest, ToStringValue) {
  EXPECT_EQ(toStringValue(H, H.undefined()), "undefined");
  EXPECT_EQ(toStringValue(H, H.null()), "null");
  EXPECT_EQ(toStringValue(H, H.trueValue()), "true");
  EXPECT_EQ(toStringValue(H, H.allocString("x")), "x");
  EXPECT_EQ(toStringValue(H, Value::makeSmi(5)), "5");
  Value Obj = H.allocObject(Shapes.plainRoot(), 0);
  EXPECT_EQ(toStringValue(H, Obj), "[object Object]");
}

TEST_F(OpsTest, StrictEquality) {
  EXPECT_TRUE(strictEquals(H, Value::makeSmi(1), Value::makeSmi(1)));
  EXPECT_TRUE(strictEquals(H, Value::makeSmi(1), H.allocHeapNumber(1.0)));
  EXPECT_FALSE(strictEquals(H, Value::makeSmi(1), H.allocString("1")));
  EXPECT_TRUE(
      strictEquals(H, H.allocString("ab"), H.allocString("ab")));
  Value NaN1 = H.allocHeapNumber(std::nan(""));
  EXPECT_FALSE(strictEquals(H, NaN1, NaN1)) << "NaN !== NaN";
  Value O1 = H.allocObject(Shapes.plainRoot(), 0);
  Value O2 = H.allocObject(Shapes.plainRoot(), 0);
  EXPECT_TRUE(strictEquals(H, O1, O1));
  EXPECT_FALSE(strictEquals(H, O1, O2)) << "objects compare by identity";
}

TEST_F(OpsTest, LooseEquality) {
  EXPECT_TRUE(looseEquals(H, H.null(), H.undefined()));
  EXPECT_FALSE(looseEquals(H, H.null(), Value::makeSmi(0)));
  EXPECT_TRUE(looseEquals(H, Value::makeSmi(1), H.allocString("1")));
  EXPECT_TRUE(looseEquals(H, H.trueValue(), Value::makeSmi(1)));
  EXPECT_TRUE(looseEquals(H, H.falseValue(), Value::makeSmi(0)));
}

struct BinCase {
  BinaryOp Op;
  double A, B, Expected;
};

class BinarySweep : public OpsTest,
                    public ::testing::WithParamInterface<BinCase> {
protected:
  BinarySweep() : OpsTest() {}
};

TEST_P(BinarySweep, Matches) {
  const BinCase &C = GetParam();
  Value R = genericBinary(H, C.Op, H.number(C.A), H.number(C.B));
  EXPECT_DOUBLE_EQ(H.numberValue(R), C.Expected);
}

INSTANTIATE_TEST_SUITE_P(
    Arithmetic, BinarySweep,
    ::testing::Values(
        BinCase{BinaryOp::Add, 2, 3, 5}, BinCase{BinaryOp::Sub, 2, 3, -1},
        BinCase{BinaryOp::Mul, -4, 3, -12},
        BinCase{BinaryOp::Div, 7, 2, 3.5},
        BinCase{BinaryOp::Mod, 7, 3, 1},
        BinCase{BinaryOp::Mod, -7, 3, -1},
        BinCase{BinaryOp::BitAnd, 12, 10, 8},
        BinCase{BinaryOp::BitOr, 12, 10, 14},
        BinCase{BinaryOp::BitXor, 12, 10, 6},
        BinCase{BinaryOp::Shl, 1, 10, 1024},
        BinCase{BinaryOp::Sar, -8, 1, -4},
        BinCase{BinaryOp::Shr, -1, 0, 4294967295.0},
        BinCase{BinaryOp::Shl, 1, 33, 2} /* shift count masked to 31 */));

TEST_F(OpsTest, StringConcatViaAdd) {
  Value R = genericBinary(H, BinaryOp::Add, H.allocString("a"),
                          Value::makeSmi(1));
  EXPECT_EQ(toStringValue(H, R), "a1");
}

TEST_F(OpsTest, GenericUnary) {
  EXPECT_DOUBLE_EQ(
      H.numberValue(genericUnary(H, UnaryOp::Neg, Value::makeSmi(5))), -5);
  EXPECT_EQ(genericUnary(H, UnaryOp::Not, Value::makeSmi(0)),
            H.trueValue());
  EXPECT_DOUBLE_EQ(
      H.numberValue(genericUnary(H, UnaryOp::BitNot, Value::makeSmi(0))),
      -1);
  EXPECT_EQ(toStringValue(H, genericUnary(H, UnaryOp::Typeof,
                                          H.allocString("s"))),
            "string");
}

TEST_F(OpsTest, ToBooleanTable) {
  EXPECT_FALSE(toBoolean(H, Value::makeSmi(0)));
  EXPECT_TRUE(toBoolean(H, Value::makeSmi(-1)));
  EXPECT_FALSE(toBoolean(H, H.allocHeapNumber(0.0)));
  EXPECT_FALSE(toBoolean(H, H.allocHeapNumber(std::nan(""))));
  EXPECT_TRUE(toBoolean(H, H.allocHeapNumber(0.001)));
  EXPECT_FALSE(toBoolean(H, H.emptyString()));
  EXPECT_TRUE(toBoolean(H, H.allocString("0")));
  EXPECT_FALSE(toBoolean(H, H.undefined()));
  EXPECT_FALSE(toBoolean(H, H.null()));
  EXPECT_TRUE(toBoolean(H, H.allocObject(Shapes.plainRoot(), 0)));
}

} // namespace
