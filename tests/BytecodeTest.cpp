//===- tests/BytecodeTest.cpp - AST -> bytecode compiler ------------------===//

#include "bytecode/Compiler.h"
#include "frontend/Parser.h"

#include <gtest/gtest.h>

using namespace ccjs;

namespace {

BytecodeModule compileOk(std::string_view Src, StringInterner &Names) {
  ParseResult P = parseProgram(Src);
  EXPECT_TRUE(P.Ok) << P.Error;
  CompileResult C = compileProgram(P.Prog, Names);
  EXPECT_TRUE(C.Ok) << C.Error;
  return std::move(C.Module);
}

size_t countOp(const BytecodeFunction &F, Opcode Op) {
  size_t N = 0;
  for (const Instr &I : F.Code)
    if (I.Op == Op)
      ++N;
  return N;
}

TEST(BytecodeTest, EntryFunctionIsIndexZero) {
  StringInterner Names;
  BytecodeModule M = compileOk("var x = 1; function f() {}", Names);
  ASSERT_EQ(M.Functions.size(), 2u);
  EXPECT_EQ(M.Functions[0].Name, "<main>");
  EXPECT_EQ(M.Functions[1].Name, "f");
}

TEST(BytecodeTest, TopLevelVarsAreGlobals) {
  StringInterner Names;
  BytecodeModule M = compileOk("var x = 1; x = x + 2;", Names);
  EXPECT_GT(countOp(M.Functions[0], Opcode::StGlobal), 0u);
  EXPECT_EQ(M.Functions[0].NumLocals, 0u);
  EXPECT_TRUE(M.GlobalIndexOf.count("x"));
}

TEST(BytecodeTest, FunctionVarsAreLocals) {
  StringInterner Names;
  BytecodeModule M =
      compileOk("function f(a) { var b = a + 1; return b; }", Names);
  const BytecodeFunction &F = M.Functions[1];
  EXPECT_EQ(F.NumParams, 1u);
  EXPECT_GE(F.NumLocals, 2u);
  EXPECT_EQ(countOp(F, Opcode::LdGlobal), 0u);
}

TEST(BytecodeTest, VarHoistingAcrossBlocks) {
  StringInterner Names;
  BytecodeModule M = compileOk(
      "function f() { if (true) { var x = 1; } return x; }", Names);
  EXPECT_EQ(countOp(M.Functions[1], Opcode::LdGlobal), 0u)
      << "var declared in a block must still be function-scoped";
}

TEST(BytecodeTest, PropertyAccessUsesNamedOps) {
  StringInterner Names;
  BytecodeModule M = compileOk("function f(o) { o.a = o.b; }", Names);
  const BytecodeFunction &F = M.Functions[1];
  EXPECT_EQ(countOp(F, Opcode::GetProp), 1u);
  EXPECT_EQ(countOp(F, Opcode::SetProp), 1u);
}

TEST(BytecodeTest, LengthUsesDedicatedOp) {
  StringInterner Names;
  BytecodeModule M = compileOk("function f(a) { return a.length; }", Names);
  EXPECT_EQ(countOp(M.Functions[1], Opcode::GetLength), 1u);
  EXPECT_EQ(countOp(M.Functions[1], Opcode::GetProp), 0u);
}

TEST(BytecodeTest, LoopsUseJumpLoop) {
  StringInterner Names;
  BytecodeModule M =
      compileOk("function f() { var i; for (i = 0; i < 3; i++) {} }", Names);
  EXPECT_EQ(countOp(M.Functions[1], Opcode::JumpLoop), 1u);
}

TEST(BytecodeTest, EverySitedOpHasDistinctSite) {
  StringInterner Names;
  BytecodeModule M = compileOk(
      "function f(o, p) { return o.a + o.b + p[0] + p[1]; }", Names);
  const BytecodeFunction &F = M.Functions[1];
  std::vector<bool> Seen(F.NumSites, false);
  for (const Instr &I : F.Code) {
    switch (I.Op) {
    case Opcode::GetProp:
    case Opcode::GetElem:
    case Opcode::BinOp:
      EXPECT_LT(I.Site, F.NumSites);
      EXPECT_FALSE(Seen[I.Site]) << "site reused";
      Seen[I.Site] = true;
      break;
    default:
      break;
    }
  }
}

TEST(BytecodeTest, MethodCallsCompileToCallMethod) {
  StringInterner Names;
  BytecodeModule M = compileOk("function f(o) { return o.m(1, 2); }", Names);
  const BytecodeFunction &F = M.Functions[1];
  EXPECT_EQ(countOp(F, Opcode::CallMethod), 1u);
  EXPECT_EQ(countOp(F, Opcode::GetProp), 0u);
}

TEST(BytecodeTest, GlobalCallsCompileToCallGlobal) {
  StringInterner Names;
  BytecodeModule M =
      compileOk("function g() {} function f() { g(); }", Names);
  EXPECT_EQ(countOp(M.Functions[2], Opcode::CallGlobal), 1u);
}

TEST(BytecodeTest, LocalFunctionValueCallsUseCallValue) {
  StringInterner Names;
  BytecodeModule M =
      compileOk("function f(cb) { return cb(1); }", Names);
  EXPECT_EQ(countOp(M.Functions[1], Opcode::CallValue), 1u);
}

TEST(BytecodeTest, LiteralsUseInitOps) {
  StringInterner Names;
  BytecodeModule M = compileOk(
      "function f() { return {a: 1, b: 2}; } function g() { return [1, 2, "
      "3]; }",
      Names);
  EXPECT_EQ(countOp(M.Functions[1], Opcode::AddPropLit), 2u);
  EXPECT_EQ(countOp(M.Functions[1], Opcode::CreateObject), 1u);
  EXPECT_EQ(countOp(M.Functions[2], Opcode::StElemInit), 3u);
  EXPECT_EQ(countOp(M.Functions[2], Opcode::CreateArray), 1u);
}

TEST(BytecodeTest, ConstantPoolDeduplicates) {
  StringInterner Names;
  BytecodeModule M = compileOk(
      "function f() { return 1.5 + 1.5 + 'x'.length + 'x'.length; }", Names);
  EXPECT_EQ(M.Functions[1].Consts.size(), 2u);
}

TEST(BytecodeTest, BreakOutsideLoopFails) {
  StringInterner Names;
  ParseResult P = parseProgram("function f() { break; }");
  ASSERT_TRUE(P.Ok);
  CompileResult C = compileProgram(P.Prog, Names);
  EXPECT_FALSE(C.Ok);
  EXPECT_NE(C.Error.find("break"), std::string::npos);
}

TEST(BytecodeTest, DisassemblerMentionsNames) {
  StringInterner Names;
  BytecodeModule M = compileOk("function f(o) { return o.prop; }", Names);
  std::string D = disassemble(M.Functions[1], Names);
  EXPECT_NE(D.find("GetProp"), std::string::npos);
  EXPECT_NE(D.find("prop"), std::string::npos);
  EXPECT_NE(D.find("Return"), std::string::npos);
}

TEST(BytecodeTest, JumpTargetsInRange) {
  StringInterner Names;
  BytecodeModule M = compileOk(
      "function f(n) { var s = 0; var i; for (i = 0; i < n; i++) { if (i % "
      "2) continue; if (i > 10) break; s += i; } return s; }",
      Names);
  const BytecodeFunction &F = M.Functions[1];
  for (const Instr &I : F.Code) {
    if (I.Op == Opcode::Jump || I.Op == Opcode::JumpLoop ||
        I.Op == Opcode::JumpIfFalse || I.Op == Opcode::JumpIfTrue) {
      EXPECT_GE(I.A, 0);
      EXPECT_LE(static_cast<size_t>(I.A), F.Code.size());
    }
  }
}

} // namespace
