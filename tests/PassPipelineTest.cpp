//===- tests/PassPipelineTest.cpp - OptIR pass pipeline & BBV backend -----===//
///
/// The pass-framework contracts of DESIGN.md §4.10:
///
///  * with every pass disabled (OptPassMask == 0, the default) the compile
///    pipeline's output is byte-identical to the seed IrBuilder emission,
///    across the differential corpus and a chaos-seed sweep;
///  * each pass can be enabled independently, never changes program
///    output, and only ever removes (or hoists) checks;
///  * the redesigned check-removal API: --check-removal=classcache is
///    byte-identical to the historical ClassCacheEnabled default, and the
///    BBV backend agrees with every other backend on program semantics.
///
//===----------------------------------------------------------------------===//

#include "DiffPrograms.h"
#include "TestUtil.h"

#include "core/BenchHarness.h"
#include "jit/Jit.h"
#include "jit/passes/IrPrinter.h"
#include "jit/passes/Pass.h"
#include "jit/passes/PassManager.h"
#include "support/Dispatch.h"

using namespace ccjs;
using ccjs::test::DiffProgram;
using ccjs::test::hotConfig;
using ccjs::test::Programs;

namespace {

constexpr size_t NumPrograms = sizeof(Programs) / sizeof(Programs[0]);

/// Renders the seed IrBuilder emission and the full pipeline's output for
/// every function the engine optimized, back to back on the engine's
/// settled state, and expects byte identity. Returns how many functions
/// were compared. The freshly built OptCodes are retired into the VM so
/// the engine destructor reclaims them.
unsigned expectPipelineMatchesSeed(Engine &E, const char *Tag) {
  VMState &VM = E.vm();
  unsigned Compared = 0;
  for (uint32_t F = 0; F < VM.Funcs.size(); ++F) {
    if (!VM.Funcs[F].Opt)
      continue;
    OptCode *Seed = buildOptIr(VM, F);
    OptCode *Piped = compileOptimized(VM, F);
    if (Seed)
      VM.RetiredOpt.push_back(Seed);
    if (Piped)
      VM.RetiredOpt.push_back(Piped);
    if (!Seed || !Piped) {
      ADD_FAILURE() << Tag << " func " << F << ": compile returned null";
      continue;
    }
    EXPECT_EQ(renderOptIr(*Seed), renderOptIr(*Piped))
        << Tag << " func " << F
        << ": all-passes-off pipeline diverged from the seed emission";
    ++Compared;
  }
  return Compared;
}

EngineConfig maskedConfig(uint32_t Mask) {
  EngineConfig Cfg = hotConfig(true);
  Cfg.OptPassMask = Mask;
  return Cfg;
}

std::string runToOutput(const EngineConfig &Cfg, const char *Source,
                        const char *Tag) {
  Engine E(Cfg);
  EXPECT_TRUE(E.load(Source) && E.runTopLevel()) << Tag << ": "
                                                 << E.lastError();
  return E.output();
}

} // namespace

// With OptPassMask == 0 (the default) the pipeline is the seed IrBuilder:
// same ops, same operands, same flags, same preload plan, byte for byte.
TEST(PassPipelineTest, AllPassesOffIsByteIdenticalToSeedEmission) {
  unsigned TotalCompared = 0;
  for (size_t P = 0; P < NumPrograms; ++P) {
    Engine E(hotConfig(true));
    ASSERT_TRUE(E.load(Programs[P].Source) && E.runTopLevel())
        << Programs[P].Name << ": " << E.lastError();
    TotalCompared += expectPipelineMatchesSeed(E, Programs[P].Name);
  }
  // The corpus must actually exercise the pipeline.
  EXPECT_GT(TotalCompared, 10u);
}

// The same byte-identity must hold while the chaos engine is poisoning
// feedback and tripping faults: the pipeline stages add no hidden
// dependence on injector state.
TEST(PassPipelineTest, AllPassesOffByteIdentityUnderChaosSweep) {
  for (uint64_t Seed = 1; Seed <= 16; ++Seed) {
    for (size_t P = 0; P < NumPrograms; ++P) {
      EngineConfig Cfg = hotConfig(true);
      Cfg.Faults.Enabled = true;
      Cfg.Faults.Seed = Seed;
      Engine E(Cfg);
      std::string Tag = std::string(Programs[P].Name) + " chaos-seed " +
                        std::to_string(Seed);
      ASSERT_TRUE(E.load(Programs[P].Source)) << Tag << ": "
                                              << E.lastError();
      // Chaos runs may legitimately halt; the settled engine state is
      // still a valid compilation input either way.
      E.runTopLevel();
      expectPipelineMatchesSeed(E, Tag.c_str());
    }
  }
}

// Per-pass ablation: any mask combination preserves program output, and
// the full mask never *adds* simulated check work.
TEST(PassPipelineTest, PassMasksPreserveOutputAndOnlyRemoveChecks) {
  const uint32_t Masks[] = {0, OptPassRedundantGuardElim, OptPassCheckMotion,
                            OptPassAll};
  for (size_t P = 0; P < NumPrograms; ++P) {
    uint64_t BaseChecks = 0;
    std::string BaseOutput;
    for (size_t M = 0; M < 4; ++M) {
      EngineConfig Cfg = maskedConfig(Masks[M]);
      Engine E(Cfg);
      std::string Tag = std::string(Programs[P].Name) + " mask " +
                        std::to_string(Masks[M]);
      ASSERT_TRUE(E.load(Programs[P].Source) && E.runTopLevel())
          << Tag << ": " << E.lastError();
      uint64_t Checks =
          E.stats().Instrs.PerCategory[unsigned(InstrCategory::Checks)];
      if (M == 0) {
        BaseOutput = E.output();
        BaseChecks = Checks;
        continue;
      }
      EXPECT_EQ(E.output(), BaseOutput) << Tag;
      EXPECT_LE(Checks, BaseChecks) << Tag;
    }
  }
}

// The passes must actually fire somewhere in the corpus, and record their
// work in the OptCode counters and metrics.
TEST(PassPipelineTest, PassesFireOnTheCorpus) {
  uint64_t Deleted = 0, Hoisted = 0;
  for (size_t P = 0; P < NumPrograms; ++P) {
    EngineConfig Cfg = maskedConfig(OptPassAll);
    Cfg.MetricsEnabled = true;
    Engine E(Cfg);
    ASSERT_TRUE(E.load(Programs[P].Source) && E.runTopLevel())
        << Programs[P].Name << ": " << E.lastError();
    Deleted += E.vm().Metrics->counter("passes.rge.deleted") +
               E.vm().Metrics->counter("passes.checkmotion.deleted");
    Hoisted += E.vm().Metrics->counter("passes.checkmotion.hoisted");
  }
  EXPECT_GT(Deleted, 0u);
  EXPECT_GT(Hoisted, 0u);
}

TEST(PassPipelineTest, OptPassMaskSpecParsing) {
  uint32_t Mask = 0xdead;
  EXPECT_TRUE(optPassMaskFromSpec("none", Mask));
  EXPECT_EQ(Mask, 0u);
  EXPECT_TRUE(optPassMaskFromSpec("all", Mask));
  EXPECT_EQ(Mask, OptPassAll);
  EXPECT_TRUE(optPassMaskFromSpec("rge", Mask));
  EXPECT_EQ(Mask, OptPassRedundantGuardElim);
  EXPECT_TRUE(optPassMaskFromSpec("checkmotion,rge", Mask));
  EXPECT_EQ(Mask, OptPassAll);
  EXPECT_FALSE(optPassMaskFromSpec("licm", Mask));
  EXPECT_FALSE(optPassMaskFromSpec("", Mask));
}

// The IR printer is deterministic and numbers every op: the same OptCode
// renders to the same bytes, one "%N:" line per op, so --ir-dump diffs
// are stable across runs.
TEST(PassPipelineTest, IrPrinterIsDeterministicWithStableSlotNumbers) {
  Engine E(hotConfig(true));
  ASSERT_TRUE(E.load(Programs[0].Source) && E.runTopLevel())
      << E.lastError();
  VMState &VM = E.vm();
  for (uint32_t F = 0; F < VM.Funcs.size(); ++F) {
    if (!VM.Funcs[F].Opt)
      continue;
    const OptCode &C = *VM.Funcs[F].Opt;
    std::string A = renderOptIr(C);
    EXPECT_EQ(A, renderOptIr(C));
    for (size_t I = 0; I < C.Ops.size(); ++I) {
      char Slot[16];
      std::snprintf(Slot, sizeof(Slot), "%4zu: ", I);
      EXPECT_NE(A.find(Slot), std::string::npos)
          << "op " << I << " missing from the dump";
    }
  }
}

// --check-removal=classcache is the historical default, bit for bit: same
// config fingerprint, same output, same serialized RunStats, under every
// dispatch mode.
TEST(PassPipelineTest, CheckRemovalClasscacheMatchesLegacyDefault) {
  DispatchMode Modes[] = {DispatchMode::Switch, DispatchMode::Fused,
                          DispatchMode::Threaded};
  for (DispatchMode Mode : Modes) {
#if !CCJS_THREADED_DISPATCH
    if (Mode == DispatchMode::Threaded)
      continue;
#endif
    for (size_t P = 0; P < NumPrograms; ++P) {
      EngineConfig Legacy = hotConfig(true);
      Legacy.Dispatch = Mode;
      EngineConfig Redesigned = hotConfig(false);
      Redesigned.CheckRemoval = CheckRemovalBackend::ClassCache;
      Redesigned.ClassCacheEnabled = true;
      Redesigned.Dispatch = Mode;
      EXPECT_EQ(configFingerprint(Legacy), configFingerprint(Redesigned));
      Engine A(Legacy), B(Redesigned);
      ASSERT_TRUE(A.load(Programs[P].Source) && A.runTopLevel())
          << Programs[P].Name << ": " << A.lastError();
      ASSERT_TRUE(B.load(Programs[P].Source) && B.runTopLevel())
          << Programs[P].Name << ": " << B.lastError();
      EXPECT_EQ(A.output(), B.output()) << Programs[P].Name;
      EXPECT_EQ(statsToJson(A.stats()).dump(2), statsToJson(B.stats()).dump(2))
          << Programs[P].Name;
    }
  }
}

// Every check-removal backend computes the same programs: interp (none) vs
// classcache vs bbv vs both.
TEST(PassPipelineTest, CheckRemovalBackendsAgreeOnSemantics) {
  const CheckRemovalBackend Backends[] = {
      CheckRemovalBackend::None, CheckRemovalBackend::ClassCache,
      CheckRemovalBackend::Bbv, CheckRemovalBackend::Both};
  for (size_t P = 0; P < NumPrograms; ++P) {
    std::string Ref;
    for (size_t B = 0; B < 4; ++B) {
      EngineConfig Cfg = hotConfig(false);
      Cfg.CheckRemoval = Backends[B];
      Cfg.ClassCacheEnabled = Backends[B] == CheckRemovalBackend::ClassCache ||
                              Backends[B] == CheckRemovalBackend::Both;
      std::string Tag = std::string(Programs[P].Name) + " backend " +
                        checkRemovalBackendName(Backends[B]);
      std::string Out = runToOutput(Cfg, Programs[P].Source, Tag.c_str());
      if (B == 0)
        Ref = Out;
      else
        EXPECT_EQ(Out, Ref) << Tag;
    }
  }
}

// The BBV backend actually specializes: versions get minted and checks get
// elided somewhere in the corpus, and the version cap holds per block.
TEST(PassPipelineTest, BbvMintsVersionsAndElidesChecks) {
  uint64_t Versions = 0, Elided = 0;
  for (size_t P = 0; P < NumPrograms; ++P) {
    EngineConfig Cfg = hotConfig(false);
    Cfg.CheckRemoval = CheckRemovalBackend::Bbv;
    Cfg.MetricsEnabled = true;
    Engine E(Cfg);
    ASSERT_TRUE(E.load(Programs[P].Source) && E.runTopLevel())
        << Programs[P].Name << ": " << E.lastError();
    Versions += E.vm().Metrics->counter("bbv.versions");
    Elided += E.vm().Metrics->counter("bbv.checks_elided");
    for (const FunctionInfo &FI : E.vm().Funcs) {
      if (!FI.Opt || !FI.Opt->Bbv)
        continue;
      for (const auto &Blk : FI.Opt->Bbv->Blocks)
        EXPECT_LE(Blk.Versions.size(), size_t(Cfg.BbvMaxVersions) + 1)
            << Programs[P].Name;
    }
  }
  EXPECT_GT(Versions, 0u);
  EXPECT_GT(Elided, 0u);
}
