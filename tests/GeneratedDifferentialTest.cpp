//===- tests/GeneratedDifferentialTest.cpp - Seeded corpus vs the oracle --===//
///
/// The generated arm of differential testing: 200 seeded ProgramGen
/// programs, each pushed through the full cross-tier oracle (pure
/// interpreter reference, tiered executor with and without the Class
/// Cache, switch vs computed-goto dispatch byte-identity, and a chaos-seed
/// sweep with the InvariantAuditor armed). Any divergence is a soundness
/// bug; reproduce and shrink it with:
///
///   ccjs-gen --seed=N --minimize
///
/// The SoundnessPrograms corpus (tests/DiffPrograms.h) holds the minimized
/// reproducers of bugs this oracle has already flushed out; they halt in
/// the baseline by design, so they are checked here through the oracle
/// rather than through runProgram().
///
//===----------------------------------------------------------------------===//

#include "DiffPrograms.h"

#include "core/Engine.h"
#include "gen/DiffOracle.h"
#include "gen/ProgramGen.h"

#include <gtest/gtest.h>

using namespace ccjs;
using namespace ccjs::gen;

namespace {

constexpr uint64_t SeedsPerChunk = 10;
constexpr uint64_t NumChunks = 20; // 200 seeds total.

/// One chunk of the corpus sweep (chunked so failures name a small seed
/// range and the suite parallelizes under ctest).
class GeneratedCorpusTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GeneratedCorpusTest, AllTiersAgree) {
  uint64_t First = GetParam() * SeedsPerChunk + 1;
  for (uint64_t Seed = First; Seed < First + SeedsPerChunk; ++Seed) {
    std::string Source = generateProgram(GenConfig::fromSeed(Seed));
    OracleResult R = runOracle(Source);
    EXPECT_FALSE(R.LoadFailed)
        << "seed " << Seed << " generated an invalid program:\n" << R.Report;
    EXPECT_TRUE(R.Ok) << "seed " << Seed
                      << " diverged (ccjs-gen --seed=" << Seed
                      << " --minimize):\n"
                      << R.Report;
  }
}

INSTANTIATE_TEST_SUITE_P(Chunks, GeneratedCorpusTest,
                         ::testing::Range<uint64_t>(0, NumChunks),
                         [](const auto &Info) {
                           uint64_t First = Info.param * SeedsPerChunk + 1;
                           return "Seeds" + std::to_string(First) + "to" +
                                  std::to_string(First + SeedsPerChunk - 1);
                         });

/// Minimized regression reproducers: each once split the tiers; all tiers
/// must now agree on them (including agreeing on the baseline's halt).
class SoundnessRegressionTest
    : public ::testing::TestWithParam<test::DiffProgram> {};

TEST_P(SoundnessRegressionTest, AllTiersAgree) {
  OracleResult R = runOracle(GetParam().Source);
  EXPECT_FALSE(R.LoadFailed) << R.Report;
  EXPECT_TRUE(R.Ok) << R.Report;
}

/// The reproducers must still reach the interesting path: the baseline
/// halts on the very index coercion the optimized tiers once skipped.
TEST_P(SoundnessRegressionTest, BaselineStillHalts) {
  Engine E(Engine::Options().withNoOpt());
  ASSERT_TRUE(E.load(GetParam().Source)) << E.lastError();
  EXPECT_FALSE(E.runTopLevel())
      << "reproducer no longer halts; it lost its regression value";
  EXPECT_NE(E.lastError().find("array index"), std::string::npos)
      << "halted for an unrelated reason: " << E.lastError();
}

INSTANTIATE_TEST_SUITE_P(Reproducers, SoundnessRegressionTest,
                         ::testing::ValuesIn(test::SoundnessPrograms),
                         [](const auto &Info) {
                           return std::string(Info.param.Name);
                         });

} // namespace
