//===- tests/LayoutTest.cpp -----------------------------------------------===//

#include "runtime/Layout.h"

#include <gtest/gtest.h>

using namespace ccjs;
using namespace ccjs::layout;

namespace {

TEST(LayoutTest, ReservedWords) {
  EXPECT_EQ(PropsPointerPos, 1u);
  EXPECT_EQ(ElementsPointerPos, 2u);
  EXPECT_EQ(ElementsLengthPos, 3u);
}

TEST(LayoutTest, FirstLineSlots) {
  // Line 0 keeps words 0..3 for header/props/elements; slots start at 4.
  EXPECT_EQ(slotLocation(0).Line, 0);
  EXPECT_EQ(slotLocation(0).Pos, 4);
  EXPECT_EQ(slotLocation(3).Pos, 7);
}

TEST(LayoutTest, SecondLineSlots) {
  // Subsequent lines keep only word 0 (the repeated header tag).
  EXPECT_EQ(slotLocation(4).Line, 1);
  EXPECT_EQ(slotLocation(4).Pos, 1);
  EXPECT_EQ(slotLocation(10).Line, 1);
  EXPECT_EQ(slotLocation(10).Pos, 7);
  EXPECT_EQ(slotLocation(11).Line, 2);
  EXPECT_EQ(slotLocation(11).Pos, 1);
}

TEST(LayoutTest, LinesForSlots) {
  EXPECT_EQ(linesForSlots(1), 1u);
  EXPECT_EQ(linesForSlots(4), 1u);
  EXPECT_EQ(linesForSlots(5), 2u);
  EXPECT_EQ(linesForSlots(11), 2u);
  EXPECT_EQ(linesForSlots(12), 3u);
}

TEST(LayoutTest, SlotsForLinesInverse) {
  for (uint32_t Lines = 1; Lines < 30; ++Lines) {
    uint32_t Slots = slotsForLines(Lines);
    EXPECT_EQ(linesForSlots(Slots), Lines);
    if (Slots + 1 <= 200)
      EXPECT_EQ(linesForSlots(Slots + 1), Lines + 1);
  }
}

class SlotMappingProperty : public ::testing::TestWithParam<uint32_t> {};

TEST_P(SlotMappingProperty, PositionsAreValidAndUnique) {
  uint32_t Slot = GetParam();
  SlotLocation L = slotLocation(Slot);
  // Positions 1..7 only; position 0 is always the header tag word.
  EXPECT_GE(L.Pos, 1);
  EXPECT_LE(L.Pos, 7);
  if (L.Line == 0) {
    // Line 0 reserves the props pointer, elements pointer and length.
    EXPECT_GE(L.Pos, 4);
  }
  // The byte offset matches (line, pos).
  EXPECT_EQ(slotByteOffset(Slot), L.Line * CacheLineBytes + L.Pos * 8u);
  // Uniqueness against all smaller slots.
  for (uint32_t S = 0; S < Slot; ++S) {
    SlotLocation O = slotLocation(S);
    EXPECT_FALSE(O.Line == L.Line && O.Pos == L.Pos)
        << "slots " << S << " and " << Slot << " collide";
  }
}

INSTANTIATE_TEST_SUITE_P(FirstSlots, SlotMappingProperty,
                         ::testing::Range(0u, 40u));

TEST(LayoutTest, HeaderEncoding) {
  uint64_t H = makeHeader(0x123456789A, 25, 0xAB, 3);
  EXPECT_EQ(headerDescAddr(H), 0x123456789Au);
  EXPECT_EQ(headerCapacity(H), 25);
  EXPECT_EQ(headerClassId(H), 0xAB);
  EXPECT_EQ(headerLine(H), 3);
}

TEST(LayoutTest, HeaderFieldsIndependent) {
  uint64_t H = makeHeader((uint64_t(1) << 40) - 8, 255, 0xFF, 255);
  EXPECT_EQ(headerDescAddr(H), (uint64_t(1) << 40) - 8);
  EXPECT_EQ(headerCapacity(H), 255);
  EXPECT_EQ(headerClassId(H), 0xFF);
  EXPECT_EQ(headerLine(H), 255);
}

} // namespace
