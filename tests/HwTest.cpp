//===- tests/HwTest.cpp - Cache, TLB, predictor, memory system ------------===//

#include "hw/BranchPredictor.h"
#include "hw/CacheSim.h"
#include "hw/MemorySystem.h"

#include <gtest/gtest.h>

using namespace ccjs;

namespace {

TEST(CacheSimTest, ColdMissThenHit) {
  CacheSim C(16, 2, 64);
  EXPECT_FALSE(C.access(0x1000));
  EXPECT_TRUE(C.access(0x1000));
  EXPECT_TRUE(C.access(0x1038)); // Same 64-byte line.
  EXPECT_FALSE(C.access(0x1040)); // Next line.
  EXPECT_EQ(C.accesses(), 4u);
  EXPECT_EQ(C.misses(), 2u);
}

TEST(CacheSimTest, LruEviction) {
  CacheSim C(1, 2, 64); // One set, two ways.
  EXPECT_FALSE(C.access(0x0));
  EXPECT_FALSE(C.access(0x40));
  EXPECT_TRUE(C.access(0x0)); // 0x40 becomes LRU.
  EXPECT_FALSE(C.access(0x80)); // Evicts 0x40.
  EXPECT_TRUE(C.access(0x0));
  EXPECT_FALSE(C.access(0x40)); // Was evicted.
}

TEST(CacheSimTest, SetIndexing) {
  CacheSim C(4, 1, 64);
  // Lines 0 and 4 map to set 0; lines 1..3 to other sets.
  EXPECT_FALSE(C.access(0 * 64));
  EXPECT_FALSE(C.access(1 * 64));
  EXPECT_TRUE(C.access(0 * 64));
  EXPECT_FALSE(C.access(4 * 64)); // Conflicts with line 0.
  EXPECT_FALSE(C.access(0 * 64)); // Evicted by line 4.
}

TEST(CacheSimTest, CapacityConstructor) {
  CacheSim C = CacheSim::fromCapacity(32 * 1024, 8, 64);
  // 32KB / (8 ways * 64B) = 64 sets. A stream of 64 distinct lines with
  // stride 64*64 maps to one set and overflows 8 ways.
  for (int I = 0; I < 9; ++I)
    C.access(uint64_t(I) * 64 * 64);
  EXPECT_EQ(C.misses(), 9u);
  EXPECT_FALSE(C.access(0)); // First line was evicted (true LRU).
}

TEST(CacheSimTest, HitRateAndReset) {
  CacheSim C(16, 2, 64);
  C.access(0);
  C.access(0);
  EXPECT_DOUBLE_EQ(C.hitRate(), 0.5);
  C.resetStats();
  EXPECT_EQ(C.accesses(), 0u);
  EXPECT_TRUE(C.access(0)) << "contents survive a stats reset";
}

TEST(CacheSimTest, WorkingSetProperty) {
  // Property: a repeating working set no larger than the cache reaches a
  // 100% steady-state hit rate.
  CacheSim C = CacheSim::fromCapacity(4096, 4, 64);
  for (int Round = 0; Round < 4; ++Round)
    for (uint64_t L = 0; L < 4096 / 64; ++L)
      C.access(L * 64);
  C.resetStats();
  for (uint64_t L = 0; L < 4096 / 64; ++L)
    EXPECT_TRUE(C.access(L * 64));
}

TEST(BranchPredictorTest, LearnsStrongBias) {
  BranchPredictor P;
  for (int I = 0; I < 100; ++I)
    P.predict(42, false);
  uint64_t Before = P.mispredicts();
  for (int I = 0; I < 100; ++I)
    P.predict(42, false);
  EXPECT_EQ(P.mispredicts(), Before)
      << "a never-taken check branch must predict perfectly once trained";
}

TEST(BranchPredictorTest, CountsMispredicts) {
  BranchPredictor P;
  uint32_t X = 99;
  for (int I = 0; I < 1000; ++I) {
    X = X * 1664525u + 1013904223u;
    P.predict(7, (X >> 16) & 1);
  }
  EXPECT_GT(P.mispredicts(), 100u) << "random outcomes cannot predict well";
  EXPECT_EQ(P.branches(), 1000u);
}

TEST(MemorySystemTest, HierarchyLatencies) {
  HwConfig Cfg;
  MemorySystem M(Cfg);
  MemAccessResult R1 = M.access(0x100000);
  EXPECT_FALSE(R1.L1Hit);
  EXPECT_FALSE(R1.L2Hit);
  EXPECT_TRUE(R1.TlbMiss);
  EXPECT_EQ(R1.ExtraLatency,
            Cfg.MemLatency - Cfg.L1LoadLatency + Cfg.TlbMissPenalty);

  MemAccessResult R2 = M.access(0x100000);
  EXPECT_TRUE(R2.L1Hit);
  EXPECT_FALSE(R2.TlbMiss);
  EXPECT_EQ(R2.ExtraLatency, 0u);
}

TEST(MemorySystemTest, L2CatchesL1Evictions) {
  HwConfig Cfg;
  MemorySystem M(Cfg);
  // Touch enough lines to overflow the 32KB L1 but stay inside 256KB L2.
  unsigned Lines = 64 * 1024 / 64;
  for (unsigned I = 0; I < Lines; ++I)
    M.access(uint64_t(I) * 64);
  // Second pass: mostly L1 misses that hit in L2.
  uint64_t L2HitsBefore = M.l2().accesses() - M.l2().misses();
  for (unsigned I = 0; I < Lines; ++I)
    M.access(uint64_t(I) * 64);
  uint64_t L2Hits = (M.l2().accesses() - M.l2().misses()) - L2HitsBefore;
  EXPECT_GT(L2Hits, Lines / 2);
}

// Degenerate geometries must be rejected loudly. A capacity smaller than one
// way-set used to produce NumSets == 0, which passed the power-of-two assert
// (0 & -1 == 0) and then masked every set index to garbage — asserts stay on
// in every build type, so these are death tests.
TEST(CacheSimDeathTest, RejectsCapacityBelowOneWaySet) {
  // 64 bytes of capacity cannot hold a 4-way x 64-byte way-set (256 bytes).
  EXPECT_DEATH(CacheSim::fromCapacity(64, 4, 64), "zero sets");
}

TEST(CacheSimDeathTest, RejectsNonMultipleCapacity) {
  // 320 is not a multiple of the 256-byte way-set.
  EXPECT_DEATH(CacheSim::fromCapacity(320, 4, 64), "multiple of ways");
}

TEST(CacheSimDeathTest, RejectsZeroSets) {
  EXPECT_DEATH(CacheSim(0, 2, 64), "at least one set");
}

TEST(CacheSimDeathTest, RejectsZeroWays) {
  EXPECT_DEATH(CacheSim(16, 0, 64), "at least one way");
}

TEST(CacheSimDeathTest, RejectsNonPowerOfTwoSets) {
  EXPECT_DEATH(CacheSim(3, 2, 64), "power of two");
}

TEST(CacheSimTest, SmallestValidCapacityIsOneWaySet) {
  // Exactly one way-set is the legal minimum: a single fully-associative set.
  CacheSim C = CacheSim::fromCapacity(256, 4, 64);
  C.access(0);
  EXPECT_EQ(C.misses(), 1u);
  EXPECT_TRUE(C.access(0));
}

TEST(MemorySystemTest, DtlbGeometry) {
  HwConfig Cfg;
  MemorySystem M(Cfg);
  // 256 pages fit the DTLB; revisiting them misses no more.
  for (int Round = 0; Round < 2; ++Round)
    for (unsigned P = 0; P < 256; ++P)
      M.access(uint64_t(P) * 4096);
  uint64_t MissesAfterWarmup = M.dtlb().misses();
  for (unsigned P = 0; P < 256; ++P)
    M.access(uint64_t(P) * 4096);
  EXPECT_EQ(M.dtlb().misses(), MissesAfterWarmup);
}

} // namespace
